//! Register-tiled SIMD compute kernels with runtime CPU-feature dispatch.
//!
//! The paper's thesis is that sparse convolution reduces to many GEMMs plus
//! data movement (§4.2, §4.3); on the CPU side every FLOP the scheduling
//! layers arrange ultimately flows through the inner loops in this module.
//! Three implementations of each primitive are provided, selected once per
//! process (never per call):
//!
//! - [`Kernel::Scalar`]: the original blocked triple loop, kept callable as
//!   the benchmark baseline and the semantic reference;
//! - [`Kernel::Portable`]: fixed-width-array loops ([`NR`] lanes) shaped so
//!   the autovectorizer can chew on them — the fallback on machines without
//!   AVX2 and the path forced by `TORCHSPARSE_SIMD=off`;
//! - [`Kernel::Avx2`] / [`Kernel::Avx2Fma`]: `std::arch` intrinsics tiling
//!   [`MR`] rows of A against two N-vectors of B in registers.
//!
//! # Bitwise determinism
//!
//! All kernels vectorize along the **N** (output-channel) dimension: one
//! accumulator lane owns one output element, and the reduction over `k`
//! walks in ascending order with a multiply followed by an add — exactly
//! the scalar kernel's per-element accumulation order. Lane width therefore
//! cannot change the arithmetic, and `Scalar`, `Portable`, and `Avx2`
//! produce bitwise identical results (the property tests assert this
//! against [`mm_reference`](crate::gemm::mm_reference)). `Avx2Fma` contracts
//! the multiply-add into one rounding step, which *does* change results, so
//! FMA is opt-in (`OptimizationConfig::fma_gemm` in the core crate) and
//! never auto-selected.
//!
//! # Weight packing
//!
//! [`PackedB`] stores a weight matrix panel-major: the `n` columns are split
//! into [`NR`]-wide panels and each panel's `k` rows are laid out
//! contiguously (zero-padded at the ragged edge). A GEMM streaming a packed
//! B reads it strictly sequentially instead of striding by `n` every `k`
//! step. Weights are constant across frames, so the core crate packs each
//! kernel-offset matrix once (at plan time, or lazily per layer on the
//! dynamic path) and reuses the buffer for every subsequent GEMM.

use crate::Half;
use std::sync::OnceLock;

/// `f32` lanes per SIMD vector on the widest supported path (AVX2 `__m256`).
pub const LANES: usize = 8;
/// Panel width in output channels: two SIMD vectors per register tile.
pub const NR: usize = 2 * LANES;
/// Rows of A tiled per register block (`MR x NR` accumulators = 8 `__m256`
/// registers, leaving room for the two B vectors and the A broadcast).
pub const MR: usize = 4;

/// One compute-kernel implementation. See the module docs for the contract
/// each variant satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The pre-vectorization blocked scalar loop (benchmark baseline).
    Scalar,
    /// Fixed-width-array loops the autovectorizer can lower; the portable
    /// fallback. Bitwise identical to `Scalar`.
    Portable,
    /// AVX2 register-tiled microkernel (mul-then-add; bitwise identical to
    /// `Scalar`).
    Avx2,
    /// AVX2 with fused multiply-add. Changes rounding — opt-in only.
    Avx2Fma,
}

impl Kernel {
    /// Whether this kernel uses `std::arch` SIMD intrinsics.
    pub fn is_simd(self) -> bool {
        matches!(self, Kernel::Avx2 | Kernel::Avx2Fma)
    }

    /// Upgrades an AVX2 selection to FMA when the CPU supports it; every
    /// other selection is returned unchanged (the portable kernels have no
    /// FMA form — `f32::mul_add` without hardware FMA is a libm call).
    #[must_use]
    pub fn with_fma(self) -> Kernel {
        if self == Kernel::Avx2 && torchsparse_runtime::cpu_features().fma {
            Kernel::Avx2Fma
        } else {
            self
        }
    }

    /// Short display name used by the benchmark artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Portable => "portable",
            Kernel::Avx2 => "avx2",
            Kernel::Avx2Fma => "avx2+fma",
        }
    }
}

/// The process-wide kernel selection, resolved once from the CPU features
/// probed at pool init and the `TORCHSPARSE_SIMD` environment variable
/// (`off`/`portable` forces [`Kernel::Portable`], `scalar` forces
/// [`Kernel::Scalar`], anything else — or unset — auto-detects). FMA is
/// never auto-selected; see [`Kernel::with_fma`].
pub fn active() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let (kernel, warning) = select(std::env::var("TORCHSPARSE_SIMD").ok().as_deref());
        if let Some(w) = warning {
            torchsparse_runtime::warn_env_once("TORCHSPARSE_SIMD", &w);
        }
        kernel
    })
}

/// Resolves a kernel from an optional `TORCHSPARSE_SIMD` value; factored out
/// of [`active`] so the policy is testable without touching process state.
///
/// Strict parse: `off`/`portable`, `scalar`, and `auto`/`on` are the
/// recognized values (case-insensitive). Anything else auto-detects and
/// returns a warning message naming the variable and the kernel fallback.
fn select(env: Option<&str>) -> (Kernel, Option<String>) {
    let auto = || {
        if torchsparse_runtime::cpu_features().avx2 {
            Kernel::Avx2
        } else {
            Kernel::Portable
        }
    };
    match env.map(str::trim) {
        None => (auto(), None),
        Some(s) if s.eq_ignore_ascii_case("off") || s.eq_ignore_ascii_case("portable") => {
            (Kernel::Portable, None)
        }
        Some(s) if s.eq_ignore_ascii_case("scalar") => (Kernel::Scalar, None),
        Some(s) if s.eq_ignore_ascii_case("auto") || s.eq_ignore_ascii_case("on") => (auto(), None),
        Some(s) => {
            let kernel = auto();
            (
                kernel,
                Some(format!(
                    "TORCHSPARSE_SIMD={s:?} is not one of off/portable/scalar/auto; \
                     falling back to auto-detection ({})",
                    kernel.name()
                )),
            )
        }
    }
}

/// A weight matrix pre-packed into the microkernel's panel-major layout.
///
/// Columns are grouped into [`NR`]-wide panels; within a panel the `k` rows
/// are contiguous, so the GEMM inner loop streams B sequentially. The
/// ragged last panel is zero-padded — padded lanes accumulate exact zeros
/// that are never stored, so packing cannot change results.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    /// Packs a row-major `k x n` matrix.
    pub fn pack(b: &crate::Matrix) -> PackedB {
        let (k, n) = b.shape();
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        let src = b.as_slice();
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let base = p * k * NR;
            for kk in 0..k {
                let row = &src[kk * n + j0..kk * n + j0 + w];
                data[base + kk * NR..base + kk * NR + w].copy_from_slice(row);
            }
        }
        PackedB { k, n, data }
    }

    /// Rows of the original matrix (the GEMM reduction dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix (output channels).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reconstructs the row-major matrix (used by the round-trip tests).
    pub fn unpack(&self) -> crate::Matrix {
        crate::Matrix::from_fn(self.k, self.n, |kk, j| {
            let p = j / NR;
            self.data[p * self.k * NR + kk * NR + (j % NR)]
        })
    }

    /// The packed panel for columns `p*NR ..`: `k` rows of `NR` lanes.
    fn panel(&self, p: usize) -> &[f32] {
        &self.data[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// The B operand of a GEMM panel: row-major, or pre-packed panel-major.
#[derive(Debug, Clone, Copy)]
pub enum BOperand<'a> {
    /// Row-major `k x n` data (a [`Matrix`](crate::Matrix) slice).
    Dense(&'a [f32]),
    /// A [`PackedB`] built by [`PackedB::pack`].
    Packed(&'a PackedB),
}

/// Computes one row panel of `C += A * B` with the chosen kernel.
///
/// `c_panel` is the slice of C covering rows `row0 ..` (`rows * n`
/// elements). Every kernel accumulates each output element over `kk` in
/// ascending order with mul-then-add (FMA excepted) and skips `a == 0.0`
/// terms exactly like the scalar loop, so all non-FMA kernels are bitwise
/// interchangeable.
pub fn gemm_panel(
    kernel: Kernel,
    a: &[f32],
    b: BOperand<'_>,
    k: usize,
    n: usize,
    row0: usize,
    c_panel: &mut [f32],
) {
    if n == 0 || c_panel.is_empty() {
        return;
    }
    match (kernel, b) {
        (Kernel::Scalar, BOperand::Dense(bd)) => panel_scalar_dense(a, bd, k, n, row0, c_panel),
        // Below the skinny-shape threshold the portable kernel's per-panel
        // accumulator copy-in/copy-out outweighs its vectorized inner loop
        // (BENCH_gemm.json: c_in=4 runs at 8.1 GFLOP/s portable vs 11.1
        // scalar), so the scalar loop takes over. Bitwise identical either
        // way — the swap is purely a throughput heuristic.
        (Kernel::Portable, BOperand::Dense(bd)) if k < PORTABLE_MIN_K => {
            panel_scalar_dense(a, bd, k, n, row0, c_panel);
        }
        (Kernel::Scalar | Kernel::Portable, BOperand::Packed(pb)) if k < PORTABLE_MIN_K => {
            panel_scalar_packed(a, pb, k, n, row0, c_panel);
        }
        // Scalar has no wide packed form of its own: the portable loop *is*
        // scalar Rust with the same per-element order.
        (Kernel::Scalar | Kernel::Portable, BOperand::Packed(pb)) => {
            panel_portable_packed(a, pb, k, n, row0, c_panel);
        }
        (Kernel::Portable, BOperand::Dense(bd)) => {
            panel_portable_dense(a, bd, k, n, row0, c_panel, 0);
        }
        (Kernel::Avx2 | Kernel::Avx2Fma, b) => {
            #[cfg(target_arch = "x86_64")]
            {
                x86::panel(kernel == Kernel::Avx2Fma, a, b, k, n, row0, c_panel);
            }
            #[cfg(not(target_arch = "x86_64"))]
            match b {
                BOperand::Dense(bd) => panel_portable_dense(a, bd, k, n, row0, c_panel, 0),
                BOperand::Packed(pb) => panel_portable_packed(a, pb, k, n, row0, c_panel),
            }
        }
    }
}

/// Reduction-depth threshold below which the portable kernel falls back to
/// the scalar loops: with so few `k` terms per output element, the portable
/// kernel's [`NR`]-lane accumulator traffic costs more than its vector math
/// earns (measured crossover between `c_in = 4` and `c_in = 32` in
/// BENCH_gemm.json). Only a dispatch choice — never a numerics change.
const PORTABLE_MIN_K: usize = 8;

/// Cache block size along the reduction dimension of the scalar kernel
/// (unchanged from the pre-vectorization GEMM; per-element order is `kk`
/// ascending regardless of blocking).
const KBLOCK: usize = 256;

/// The original blocked scalar loop, verbatim — the benchmark baseline and
/// the semantic reference for the zero-skip behaviour.
fn panel_scalar_dense(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, c_panel: &mut [f32]) {
    let rows_here = c_panel.len() / n;
    for kb in (0..k).step_by(KBLOCK) {
        let k_end = (kb + KBLOCK).min(k);
        for r in 0..rows_here {
            let a_row = &a[(row0 + r) * k..(row0 + r) * k + k];
            let c_row = &mut c_panel[r * n..(r + 1) * n];
            for kk in kb..k_end {
                let aval = a_row[kk];
                if aval == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        }
    }
}

/// Portable panel kernel over row-major B, starting at column `j_start`
/// (non-zero when the AVX2 path delegates its ragged tail columns here).
/// Full-width panels run a fixed [`NR`]-lane accumulator array the
/// autovectorizer lowers to vector code.
fn panel_portable_dense(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    c_panel: &mut [f32],
    j_start: usize,
) {
    let rows_here = c_panel.len() / n;
    let mut j0 = j_start;
    while j0 < n {
        let w = NR.min(n - j0);
        for r in 0..rows_here {
            let a_row = &a[(row0 + r) * k..(row0 + r) * k + k];
            let c_row = &mut c_panel[r * n + j0..r * n + j0 + w];
            let mut acc = [0.0f32; NR];
            acc[..w].copy_from_slice(c_row);
            for (kk, &aval) in a_row.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                if w == NR {
                    let b_row = &b[kk * n + j0..kk * n + j0 + NR];
                    for (av, bv) in acc.iter_mut().zip(b_row) {
                        *av += aval * bv;
                    }
                } else {
                    let b_row = &b[kk * n + j0..kk * n + j0 + w];
                    for (av, bv) in acc.iter_mut().zip(b_row) {
                        *av += aval * bv;
                    }
                }
            }
            c_row.copy_from_slice(&acc[..w]);
        }
        j0 += NR;
    }
}

/// Portable panel kernel over a [`PackedB`]. Padded lanes of the ragged
/// panel multiply stored zeros and are discarded at the store, so the
/// accumulation of every *real* element is unchanged.
fn panel_portable_packed(
    a: &[f32],
    pb: &PackedB,
    k: usize,
    n: usize,
    row0: usize,
    c_panel: &mut [f32],
) {
    debug_assert_eq!(pb.k, k);
    debug_assert_eq!(pb.n, n);
    let rows_here = c_panel.len() / n;
    for p in 0..n.div_ceil(NR) {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = pb.panel(p);
        for r in 0..rows_here {
            let a_row = &a[(row0 + r) * k..(row0 + r) * k + k];
            let c_row = &mut c_panel[r * n + j0..r * n + j0 + w];
            let mut acc = [0.0f32; NR];
            acc[..w].copy_from_slice(c_row);
            for (kk, &aval) in a_row.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let b_row = &panel[kk * NR..kk * NR + NR];
                for (av, bv) in acc.iter_mut().zip(b_row) {
                    *av += aval * bv;
                }
            }
            c_row.copy_from_slice(&acc[..w]);
        }
    }
}

/// Scalar-style panel kernel over a [`PackedB`]: accumulates straight into
/// the C rows without the portable kernel's accumulator-array staging —
/// the profitable shape below [`PORTABLE_MIN_K`], where staging costs more
/// than the handful of `k` terms it amortizes. Per-element order is `kk`
/// ascending with the zero-skip, identical to every other kernel.
fn panel_scalar_packed(
    a: &[f32],
    pb: &PackedB,
    k: usize,
    n: usize,
    row0: usize,
    c_panel: &mut [f32],
) {
    debug_assert_eq!(pb.k, k);
    debug_assert_eq!(pb.n, n);
    let rows_here = c_panel.len() / n;
    for p in 0..n.div_ceil(NR) {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = pb.panel(p);
        for r in 0..rows_here {
            let a_row = &a[(row0 + r) * k..(row0 + r) * k + k];
            let c_row = &mut c_panel[r * n + j0..r * n + j0 + w];
            for (kk, &aval) in a_row.iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let b_row = &panel[kk * NR..kk * NR + w];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        }
    }
}

/// Fused gather–GEMM–scatter over one batch of kernel-map entries.
///
/// For each entry `i`, computes the row product
/// `a[in_rows[i]] · B` (A rows read *through* the map indices — the gather
/// is folded into the panel loads, no materialized A or partial-sum buffer
/// exists), optionally rounds the product to binary16 (the unfused path's
/// 16-bit partial-sum storage), and accumulates it into row `out_rel[i]` of
/// `out` (a row-major block with `n` columns) with one FP32 add per
/// element — the scatter epilogue.
///
/// # Bitwise contract
///
/// Per output element this performs exactly the unfused sequence: a
/// zero-initialized dot product over `kk` ascending with mul-then-add and
/// the `a == 0.0` skip (the GEMM into a zeroed psum buffer), an optional
/// per-element f16 round trip (psum storage), then a single `+=` into the
/// output row (the scatter). All non-FMA kernels therefore produce bits
/// identical to gather → GEMM → scatter at any tiling.
///
/// # Panics
///
/// Panics when index/shape invariants are violated: mismatched
/// `in_rows`/`out_rel` lengths, an `in_rows` entry past `a`'s rows, an
/// `out_rel` entry past `out`'s rows, or a B operand smaller than `k x n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_gather_scatter(
    kernel: Kernel,
    a: &[f32],
    k: usize,
    in_rows: &[u32],
    b: BOperand<'_>,
    n: usize,
    round_f16: bool,
    out: &mut [f32],
    out_rel: &[u32],
) {
    assert_eq!(in_rows.len(), out_rel.len(), "one output row per gathered row");
    if n == 0 || in_rows.is_empty() {
        return;
    }
    for &src in in_rows {
        assert!(k == 0 || (src as usize + 1) * k <= a.len(), "gather row in bounds");
    }
    for &dst in out_rel {
        assert!((dst as usize + 1) * n <= out.len(), "scatter row in bounds");
    }
    match b {
        BOperand::Dense(bd) => assert!(bd.len() >= k * n, "dense B holds k x n"),
        BOperand::Packed(pb) => {
            assert_eq!(pb.k, k);
            assert_eq!(pb.n, n);
        }
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 | Kernel::Avx2Fma => {
            x86::fused_rows(kernel, a, k, in_rows, b, n, round_f16, out, out_rel);
        }
        _ => fused_rows_portable(kernel, a, k, in_rows, b, n, round_f16, out, out_rel, 0),
    }
}

/// Safe fused kernel shared by `Scalar` and `Portable` (their per-element
/// order is identical, so one loop serves both), and the ragged-tail
/// delegate of the AVX2 path (`j_start` marks where the full-width panels
/// stopped).
#[allow(clippy::too_many_arguments)]
fn fused_rows_portable(
    kernel: Kernel,
    a: &[f32],
    k: usize,
    in_rows: &[u32],
    b: BOperand<'_>,
    n: usize,
    round_f16: bool,
    out: &mut [f32],
    out_rel: &[u32],
    j_start: usize,
) {
    let mut j0 = j_start;
    while j0 < n {
        let w = NR.min(n - j0);
        for (&src, &dst) in in_rows.iter().zip(out_rel) {
            let a_row = &a[src as usize * k..src as usize * k + k];
            let mut acc = [0.0f32; NR];
            match b {
                BOperand::Dense(bd) => {
                    for (kk, &aval) in a_row.iter().enumerate() {
                        if aval == 0.0 {
                            continue;
                        }
                        let b_row = &bd[kk * n + j0..kk * n + j0 + w];
                        for (av, bv) in acc.iter_mut().zip(b_row) {
                            *av += aval * bv;
                        }
                    }
                }
                BOperand::Packed(pb) => {
                    // Padded lanes multiply stored zeros into acc[w..],
                    // which is never read back.
                    let panel = pb.panel(j0 / NR);
                    for (kk, &aval) in a_row.iter().enumerate() {
                        if aval == 0.0 {
                            continue;
                        }
                        let b_row = &panel[kk * NR..kk * NR + NR];
                        for (av, bv) in acc.iter_mut().zip(b_row) {
                            *av += aval * bv;
                        }
                    }
                }
            }
            if round_f16 {
                f16_round_trip_slice(kernel, &mut acc[..w]);
            }
            let o = dst as usize * n + j0;
            for (ov, av) in out[o..o + w].iter_mut().zip(&acc[..w]) {
                *ov += av;
            }
        }
        j0 += NR;
    }
}

/// Copies one feature row. On AVX2 this is an explicit wide-vector loop
/// (no `memcpy` call overhead for the short rows typical of feature
/// buffers); elsewhere it is `copy_from_slice`. Identical bytes either way.
pub fn copy_row(kernel: Kernel, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() {
        x86::copy_row(dst, src);
        return;
    }
    let _ = kernel;
    dst.copy_from_slice(src);
}

/// Accumulates `dst[i] += src[i]` over one feature row. Each element is one
/// independent FP32 add, so every kernel produces identical bits.
pub fn accumulate_row(kernel: Kernel, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() {
        x86::accumulate_row(dst, src);
        return;
    }
    let _ = kernel;
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Rounds every element to the nearest binary16 and back (FP16 storage
/// simulation) in one slice sweep.
///
/// The AVX2+F16C path uses the hardware converters, which implement exactly
/// the same round-to-nearest-even semantics as [`Half::from_f32`] for every
/// non-NaN input; blocks containing NaNs fall back to the software
/// converter so NaN payload canonicalization is also identical. The result
/// is therefore bitwise equal to the scalar sweep for *all* inputs.
pub fn f16_round_trip_slice(kernel: Kernel, data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() && torchsparse_runtime::cpu_features().f16c {
        x86::f16_round_trip(data);
        return;
    }
    let _ = kernel;
    for v in data {
        *v = Half::from_f32(*v).to_f32();
    }
}

/// Converts a slice to binary16 storage (bulk [`Half::from_f32`]).
pub fn f16_quantize_slice(kernel: Kernel, src: &[f32], dst: &mut Vec<Half>) {
    dst.clear();
    dst.reserve(src.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() && torchsparse_runtime::cpu_features().f16c {
        x86::f16_quantize(src, dst);
        return;
    }
    let _ = kernel;
    dst.extend(src.iter().map(|&v| Half::from_f32(v)));
}

/// Expands binary16 storage to `f32` (bulk [`Half::to_f32`]).
pub fn f16_dequantize_slice(kernel: Kernel, src: &[Half], dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(src.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() && torchsparse_runtime::cpu_features().f16c {
        x86::f16_dequantize(src, dst);
        return;
    }
    let _ = kernel;
    dst.extend(src.iter().map(|h| h.to_f32()));
}

/// Symmetric INT8 quantize-dequantize round trip over a slice:
/// `clamp(round(v / scale), -127, 127) * scale` per element, exactly as the
/// scalar [`Int8Quantizer`](crate::quant::Int8Quantizer) computes it
/// (including round-half-away-from-zero, saturation of infinities, and
/// NaN -> 0). The AVX2 path reconstructs `f32::round` from truncate +
/// half-bump, which is exact for every representable input, so results are
/// bitwise identical to the scalar loop.
pub fn int8_round_trip_slice(kernel: Kernel, scale: f32, data: &mut [f32]) {
    debug_assert!(scale.is_finite() && scale > 0.0);
    #[cfg(target_arch = "x86_64")]
    if kernel.is_simd() {
        x86::int8_round_trip(scale, data);
        return;
    }
    let _ = kernel;
    for v in data {
        *v = int8_round_trip_scalar(scale, *v);
    }
}

/// One element of the INT8 round trip — the semantic reference shared by
/// the scalar sweep and the vector path's tail loop.
fn int8_round_trip_scalar(scale: f32, v: f32) -> f32 {
    let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
    q as f32 * scale
}

/// The `std::arch` implementations. This is the only module in the crate
/// allowed to use `unsafe`: every function is either `#[target_feature]`
/// (called through a safe wrapper that checked [`cpu_features`]
/// (torchsparse_runtime::cpu_features) first) or plain pointer arithmetic
/// over lengths the safe wrappers validated.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{BOperand, PackedB, LANES, MR, NR};
    use crate::Half;
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_and_ps, _mm256_andnot_ps, _mm256_cmp_ps, _mm256_cvtph_ps,
        _mm256_cvtps_ph, _mm256_div_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_max_ps,
        _mm256_min_ps, _mm256_movemask_ps, _mm256_mul_ps, _mm256_or_ps, _mm256_round_ps,
        _mm256_set1_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_storeu_si128, _CMP_GE_OQ,
        _CMP_UNORD_Q, _MM_FROUND_NO_EXC, _MM_FROUND_TO_NEAREST_INT, _MM_FROUND_TO_ZERO,
    };

    /// Entry point for the AVX2 GEMM panel. `fma` selects the fused form.
    pub(super) fn panel(
        fma: bool,
        a: &[f32],
        b: BOperand<'_>,
        k: usize,
        n: usize,
        row0: usize,
        c_panel: &mut [f32],
    ) {
        // SAFETY: callers select the AVX2 kernels only after
        // `cpu_features()` reported avx2 (and fma for the fused form); the
        // target-feature functions below are then safe to enter.
        unsafe {
            match (fma, b) {
                (false, BOperand::Dense(bd)) => panel_dense_avx2(a, bd, k, n, row0, c_panel),
                (true, BOperand::Dense(bd)) => panel_dense_fma(a, bd, k, n, row0, c_panel),
                (false, BOperand::Packed(pb)) => panel_packed_avx2(a, pb, k, n, row0, c_panel),
                (true, BOperand::Packed(pb)) => panel_packed_fma(a, pb, k, n, row0, c_panel),
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn panel_dense_avx2(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        c: &mut [f32],
    ) {
        unsafe { panel_dense_impl::<false>(a, b, k, n, row0, c) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn panel_dense_fma(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        c: &mut [f32],
    ) {
        unsafe { panel_dense_impl::<true>(a, b, k, n, row0, c) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn panel_packed_avx2(
        a: &[f32],
        pb: &PackedB,
        k: usize,
        n: usize,
        row0: usize,
        c: &mut [f32],
    ) {
        unsafe { panel_packed_impl::<false>(a, pb, k, n, row0, c) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn panel_packed_fma(
        a: &[f32],
        pb: &PackedB,
        k: usize,
        n: usize,
        row0: usize,
        c: &mut [f32],
    ) {
        unsafe { panel_packed_impl::<true>(a, pb, k, n, row0, c) }
    }

    /// Register block: `R` rows of A against one NR-wide column panel of B.
    ///
    /// `a_rows` holds each A row's base pointer — contiguous matrix rows for
    /// the plain GEMM, or kernel-map-gathered rows for the fused path (the
    /// gather is folded into the loads; there is no materialized A panel).
    /// `b_panel` points at the panel's first row, `b_stride` is the float
    /// distance between consecutive `kk` rows (`n` for dense B, [`NR`] for
    /// packed), `c_ptr` at `C[row][j0]` with row stride `c_stride`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (and FMA when `FMA`); every `a_rows[i]` must stay
    /// readable for `k` floats, `b_panel` for `k` strides of [`NR`] floats,
    /// and `c_ptr` writable for `R` rows of [`NR`] floats.
    #[inline(always)]
    unsafe fn block_rows<const FMA: bool, const R: usize>(
        a_rows: [*const f32; R],
        k: usize,
        b_panel: *const f32,
        b_stride: usize,
        c_ptr: *mut f32,
        c_stride: usize,
    ) {
        unsafe {
            let mut acc0 = [_mm256_set1_ps(0.0); R];
            let mut acc1 = [_mm256_set1_ps(0.0); R];
            for i in 0..R {
                acc0[i] = _mm256_loadu_ps(c_ptr.add(i * c_stride));
                acc1[i] = _mm256_loadu_ps(c_ptr.add(i * c_stride + LANES));
            }
            for kk in 0..k {
                let b_row = b_panel.add(kk * b_stride);
                let b0 = _mm256_loadu_ps(b_row);
                let b1 = _mm256_loadu_ps(b_row.add(LANES));
                for i in 0..R {
                    // The zero-skip mirrors the scalar kernel: sparse gather
                    // rows (bmm padding) contribute nothing, and skipping
                    // keeps bitwise parity with the original loop even for
                    // signed zeros.
                    let aval = *a_rows[i].add(kk);
                    if aval != 0.0 {
                        let av = _mm256_set1_ps(aval);
                        if FMA {
                            acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
                            acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
                        } else {
                            acc0[i] = _mm256_add_ps(acc0[i], _mm256_mul_ps(av, b0));
                            acc1[i] = _mm256_add_ps(acc1[i], _mm256_mul_ps(av, b1));
                        }
                    }
                }
            }
            for i in 0..R {
                _mm256_storeu_ps(c_ptr.add(i * c_stride), acc0[i]);
                _mm256_storeu_ps(c_ptr.add(i * c_stride + LANES), acc1[i]);
            }
        }
    }

    #[inline(always)]
    unsafe fn panel_dense_impl<const FMA: bool>(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        c_panel: &mut [f32],
    ) {
        let rows_here = c_panel.len() / n;
        let full = n / NR;
        let c_base = c_panel.as_mut_ptr();
        for p in 0..full {
            let j0 = p * NR;
            // SAFETY: j0 + NR <= n, so B rows and C rows have NR floats at
            // offset j0; A rows row0..row0+rows_here exist by the caller's
            // slice contract.
            unsafe {
                let b_panel = b.as_ptr().add(j0);
                let a_ptr = a.as_ptr();
                let mut r = 0;
                while r + MR <= rows_here {
                    let rows = std::array::from_fn(|i| a_ptr.add((row0 + r + i) * k));
                    block_rows::<FMA, MR>(rows, k, b_panel, n, c_base.add(r * n + j0), n);
                    r += MR;
                }
                while r < rows_here {
                    let rows = [a_ptr.add((row0 + r) * k)];
                    block_rows::<FMA, 1>(rows, k, b_panel, n, c_base.add(r * n + j0), n);
                    r += 1;
                }
            }
        }
        // Ragged tail columns: the portable loop, which accumulates each
        // element in the identical order.
        if full * NR < n {
            super::panel_portable_dense(a, b, k, n, row0, c_panel, full * NR);
        }
    }

    #[inline(always)]
    unsafe fn panel_packed_impl<const FMA: bool>(
        a: &[f32],
        pb: &PackedB,
        k: usize,
        n: usize,
        row0: usize,
        c_panel: &mut [f32],
    ) {
        debug_assert_eq!(pb.k, k);
        debug_assert_eq!(pb.n, n);
        let rows_here = c_panel.len() / n;
        let c_base = c_panel.as_mut_ptr();
        for p in 0..n.div_ceil(NR) {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = pb.panel(p);
            if w == NR {
                // SAFETY: full-width panel — NR floats exist at every C row
                // offset j0 and at every packed row.
                unsafe {
                    let a_ptr = a.as_ptr();
                    let mut r = 0;
                    while r + MR <= rows_here {
                        let rows = std::array::from_fn(|i| a_ptr.add((row0 + r + i) * k));
                        block_rows::<FMA, MR>(
                            rows,
                            k,
                            panel.as_ptr(),
                            NR,
                            c_base.add(r * n + j0),
                            n,
                        );
                        r += MR;
                    }
                    while r < rows_here {
                        let rows = [a_ptr.add((row0 + r) * k)];
                        block_rows::<FMA, 1>(
                            rows,
                            k,
                            panel.as_ptr(),
                            NR,
                            c_base.add(r * n + j0),
                            n,
                        );
                        r += 1;
                    }
                }
            } else {
                // Ragged panel: accumulate full NR lanes (padded B lanes are
                // stored zeros) into a stack tile and copy back only the
                // real columns.
                for r in 0..rows_here {
                    let c_row = &mut c_panel[r * n + j0..r * n + j0 + w];
                    let mut tile = [0.0f32; NR];
                    tile[..w].copy_from_slice(c_row);
                    // SAFETY: the tile is NR floats on the stack and the
                    // packed panel rows are NR floats each.
                    unsafe {
                        let rows = [a.as_ptr().add((row0 + r) * k)];
                        block_rows::<FMA, 1>(rows, k, panel.as_ptr(), NR, tile.as_mut_ptr(), NR);
                    }
                    c_row.copy_from_slice(&tile[..w]);
                }
            }
        }
    }

    /// AVX2 entry point for the fused gather–GEMM–scatter kernel. Shapes
    /// and indices were validated by the safe wrapper
    /// ([`gemm_gather_scatter`](super::gemm_gather_scatter)).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn fused_rows(
        kernel: super::Kernel,
        a: &[f32],
        k: usize,
        in_rows: &[u32],
        b: BOperand<'_>,
        n: usize,
        round_f16: bool,
        out: &mut [f32],
        out_rel: &[u32],
    ) {
        // SAFETY: callers select the AVX2 kernels only after cpu_features()
        // reported avx2 (and fma for the fused-multiply-add form).
        unsafe {
            if kernel == super::Kernel::Avx2Fma {
                fused_rows_fma(kernel, a, k, in_rows, b, n, round_f16, out, out_rel);
            } else {
                fused_rows_avx2(kernel, a, k, in_rows, b, n, round_f16, out, out_rel);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn fused_rows_avx2(
        kernel: super::Kernel,
        a: &[f32],
        k: usize,
        in_rows: &[u32],
        b: BOperand<'_>,
        n: usize,
        round_f16: bool,
        out: &mut [f32],
        out_rel: &[u32],
    ) {
        unsafe { fused_rows_impl::<false>(kernel, a, k, in_rows, b, n, round_f16, out, out_rel) }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn fused_rows_fma(
        kernel: super::Kernel,
        a: &[f32],
        k: usize,
        in_rows: &[u32],
        b: BOperand<'_>,
        n: usize,
        round_f16: bool,
        out: &mut [f32],
        out_rel: &[u32],
    ) {
        unsafe { fused_rows_impl::<true>(kernel, a, k, in_rows, b, n, round_f16, out, out_rel) }
    }

    /// Register-tiled fused kernel: [`MR`]-entry groups of map rows against
    /// each full [`NR`]-wide column panel of B, computed into a zeroed
    /// stack tile (A rows loaded straight through the gather indices),
    /// optionally f16-rounded, then added into the scattered output rows.
    /// Ragged tail columns delegate to the portable loop, which accumulates
    /// each element in the identical order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn fused_rows_impl<const FMA: bool>(
        kernel: super::Kernel,
        a: &[f32],
        k: usize,
        in_rows: &[u32],
        b: BOperand<'_>,
        n: usize,
        round_f16: bool,
        out: &mut [f32],
        out_rel: &[u32],
    ) {
        let full = n / NR;
        let a_ptr = a.as_ptr();
        for p in 0..full {
            let j0 = p * NR;
            // SAFETY: j0 + NR <= n for full panels; the safe wrapper bounds-
            // checked every gather index against `a` and every scatter index
            // against `out`, and B covers k x n (packed panels are k x NR).
            unsafe {
                let (b_panel, b_stride) = match b {
                    BOperand::Dense(bd) => (bd.as_ptr().add(j0), n),
                    BOperand::Packed(pb) => (pb.panel(p).as_ptr(), NR),
                };
                let mut r = 0;
                while r + MR <= in_rows.len() {
                    let rows = std::array::from_fn(|i| a_ptr.add(in_rows[r + i] as usize * k));
                    let mut tile = [0.0f32; MR * NR];
                    block_rows::<FMA, MR>(rows, k, b_panel, b_stride, tile.as_mut_ptr(), NR);
                    for (i, row) in tile.chunks_mut(NR).enumerate() {
                        if round_f16 {
                            super::f16_round_trip_slice(kernel, row);
                        }
                        let o = out_rel[r + i] as usize * n + j0;
                        accumulate_row(&mut out[o..o + NR], row);
                    }
                    r += MR;
                }
                while r < in_rows.len() {
                    let rows = [a_ptr.add(in_rows[r] as usize * k)];
                    let mut tile = [0.0f32; NR];
                    block_rows::<FMA, 1>(rows, k, b_panel, b_stride, tile.as_mut_ptr(), NR);
                    if round_f16 {
                        super::f16_round_trip_slice(kernel, &mut tile);
                    }
                    let o = out_rel[r] as usize * n + j0;
                    accumulate_row(&mut out[o..o + NR], &tile);
                    r += 1;
                }
            }
        }
        if full * NR < n {
            super::fused_rows_portable(
                kernel,
                a,
                k,
                in_rows,
                b,
                n,
                round_f16,
                out,
                out_rel,
                full * NR,
            );
        }
    }

    pub(super) fn copy_row(dst: &mut [f32], src: &[f32]) {
        // SAFETY: is_simd() selections imply avx2 was detected.
        unsafe { copy_row_avx2(dst, src) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn copy_row_avx2(dst: &mut [f32], src: &[f32]) {
        let len = dst.len().min(src.len());
        let mut i = 0;
        // SAFETY: i + 2*LANES <= len bounds every load/store below.
        unsafe {
            let s = src.as_ptr();
            let d = dst.as_mut_ptr();
            while i + NR <= len {
                let v0 = _mm256_loadu_ps(s.add(i));
                let v1 = _mm256_loadu_ps(s.add(i + LANES));
                _mm256_storeu_ps(d.add(i), v0);
                _mm256_storeu_ps(d.add(i + LANES), v1);
                i += NR;
            }
        }
        dst[i..len].copy_from_slice(&src[i..len]);
    }

    pub(super) fn accumulate_row(dst: &mut [f32], src: &[f32]) {
        // SAFETY: is_simd() selections imply avx2 was detected.
        unsafe { accumulate_row_avx2(dst, src) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_row_avx2(dst: &mut [f32], src: &[f32]) {
        let len = dst.len().min(src.len());
        let mut i = 0;
        // SAFETY: i + LANES <= len bounds every load/store below.
        unsafe {
            let s = src.as_ptr();
            let d = dst.as_mut_ptr();
            while i + LANES <= len {
                let sum = _mm256_add_ps(_mm256_loadu_ps(d.add(i)), _mm256_loadu_ps(s.add(i)));
                _mm256_storeu_ps(d.add(i), sum);
                i += LANES;
            }
        }
        for (d, s) in dst[i..len].iter_mut().zip(&src[i..len]) {
            *d += s;
        }
    }

    // The cvtps_ph rounding immediate is a 3-bit field: the
    // round-to-nearest-even selector only (no room for the NO_EXC flag).
    const F16_ROUND: i32 = _MM_FROUND_TO_NEAREST_INT;

    pub(super) fn f16_round_trip(data: &mut [f32]) {
        // SAFETY: callers checked avx2 + f16c.
        unsafe { f16_round_trip_f16c(data) }
    }

    #[target_feature(enable = "avx,f16c")]
    unsafe fn f16_round_trip_f16c(data: &mut [f32]) {
        let len = data.len();
        let mut i = 0;
        while i + LANES <= len {
            // SAFETY: i + LANES <= len.
            unsafe {
                let p = data.as_mut_ptr().add(i);
                let v = _mm256_loadu_ps(p);
                // NaN payloads canonicalize differently in hardware; punt
                // those (rare, fault-path-only) blocks to the software
                // converter so all kernels agree bitwise on every input.
                if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v)) == 0 {
                    let h = _mm256_cvtps_ph::<F16_ROUND>(v);
                    _mm256_storeu_ps(p, _mm256_cvtph_ps(h));
                } else {
                    for v in &mut data[i..i + LANES] {
                        *v = Half::from_f32(*v).to_f32();
                    }
                }
            }
            i += LANES;
        }
        for v in &mut data[i..] {
            *v = Half::from_f32(*v).to_f32();
        }
    }

    pub(super) fn f16_quantize(src: &[f32], dst: &mut Vec<Half>) {
        // SAFETY: callers checked avx2 + f16c.
        unsafe { f16_quantize_f16c(src, dst) }
    }

    #[target_feature(enable = "avx,f16c")]
    unsafe fn f16_quantize_f16c(src: &[f32], dst: &mut Vec<Half>) {
        let mut i = 0;
        let mut block = [0u16; LANES];
        while i + LANES <= src.len() {
            // SAFETY: i + LANES <= src.len(); `block` is 8 u16 = 128 bits.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v)) == 0 {
                    let h = _mm256_cvtps_ph::<F16_ROUND>(v);
                    _mm_storeu_si128(block.as_mut_ptr().cast(), h);
                    dst.extend(block.iter().map(|&b| Half::from_bits(b)));
                } else {
                    dst.extend(src[i..i + LANES].iter().map(|&v| Half::from_f32(v)));
                }
            }
            i += LANES;
        }
        dst.extend(src[i..].iter().map(|&v| Half::from_f32(v)));
    }

    pub(super) fn f16_dequantize(src: &[Half], dst: &mut Vec<f32>) {
        // SAFETY: callers checked avx2 + f16c.
        unsafe { f16_dequantize_f16c(src, dst) }
    }

    #[target_feature(enable = "avx,f16c")]
    unsafe fn f16_dequantize_f16c(src: &[Half], dst: &mut Vec<f32>) {
        let mut i = 0;
        let mut out = [0.0f32; LANES];
        while i + LANES <= src.len() {
            let block = &src[i..i + LANES];
            // Hardware ph->ps preserves NaN payloads where the software
            // converter canonicalizes; route NaN blocks to software.
            if block.iter().any(|h| h.to_bits() & 0x7FFF > 0x7C00) {
                dst.extend(block.iter().map(|h| h.to_f32()));
            } else {
                let mut bits = [0u16; LANES];
                for (b, h) in bits.iter_mut().zip(block) {
                    *b = h.to_bits();
                }
                // SAFETY: `bits` is 8 u16 = 128 bits; `out` is 8 f32.
                unsafe {
                    let h = std::arch::x86_64::_mm_loadu_si128(bits.as_ptr().cast());
                    _mm256_storeu_ps(out.as_mut_ptr(), _mm256_cvtph_ps(h));
                }
                dst.extend_from_slice(&out);
            }
            i += LANES;
        }
        dst.extend(src[i..].iter().map(|h| h.to_f32()));
    }

    pub(super) fn int8_round_trip(scale: f32, data: &mut [f32]) {
        // SAFETY: is_simd() selections imply avx2 was detected.
        unsafe { int8_round_trip_avx2(scale, data) }
    }

    /// Vector INT8 round trip, bit-exact against the scalar reference:
    ///
    /// - `round()` (half away from zero) is rebuilt as truncate + bump when
    ///   `|frac| >= 0.5`. `q - trunc(q)` is exact for every f32 (both are
    ///   multiples of `ulp(q)`), and integers below 2^23 step by 1 exactly,
    ///   so the rebuilt rounding never deviates.
    /// - `clamp` maps +-inf to +-127 like `f32::clamp`.
    /// - NaN lanes are zeroed afterwards, matching the scalar `as i8` cast.
    /// - adding `+0.0` post-clamp turns `-0.0` into `+0.0`, matching the
    ///   scalar path's pass through the integer 0.
    #[target_feature(enable = "avx2")]
    unsafe fn int8_round_trip_avx2(scale: f32, data: &mut [f32]) {
        let len = data.len();
        let scale_v = _mm256_set1_ps(scale);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let pos_zero = _mm256_set1_ps(0.0);
        let sign_mask = _mm256_set1_ps(-0.0);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        let mut i = 0;
        // SAFETY: i + LANES <= len bounds every load/store.
        unsafe {
            let p = data.as_mut_ptr();
            while i + LANES <= len {
                let v = _mm256_loadu_ps(p.add(i));
                let q = _mm256_div_ps(v, scale_v);
                let t = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(q);
                let frac = _mm256_sub_ps(q, t);
                let frac_abs = _mm256_andnot_ps(sign_mask, frac);
                let bump_mask = _mm256_cmp_ps::<_CMP_GE_OQ>(frac_abs, half);
                let signed_one = _mm256_or_ps(one, _mm256_and_ps(q, sign_mask));
                let rounded = _mm256_add_ps(t, _mm256_and_ps(bump_mask, signed_one));
                let clamped = _mm256_max_ps(_mm256_min_ps(rounded, hi), lo);
                // -0.0 -> +0.0 (x + 0.0 is the identity for every other x).
                let normalized = _mm256_add_ps(clamped, pos_zero);
                let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(v, v);
                let code = _mm256_andnot_ps(nan, normalized);
                _mm256_storeu_ps(p.add(i), _mm256_mul_ps(code, scale_v));
                i += LANES;
            }
        }
        for v in &mut data[i..] {
            *v = super::int8_round_trip_scalar(scale, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Int8Quantizer;
    use crate::Matrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn every_kernel() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar, Kernel::Portable];
        if torchsparse_runtime::cpu_features().avx2 {
            ks.push(Kernel::Avx2);
        }
        ks
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Runs one full-matrix GEMM (`C += A*B`) through `gemm_panel`.
    fn run_panel(kernel: Kernel, a: &Matrix, b: BOperand<'_>, n: usize, c: &mut Matrix) {
        gemm_panel(kernel, a.as_slice(), b, a.cols(), n, 0, c.as_mut_slice());
    }

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn env_selection_policy() {
        assert_eq!(select(Some("off")), (Kernel::Portable, None));
        assert_eq!(select(Some(" Portable ")), (Kernel::Portable, None));
        assert_eq!(select(Some("scalar")), (Kernel::Scalar, None));
        let (auto, none) = select(None);
        assert!(none.is_none());
        assert!(auto == Kernel::Avx2 || auto == Kernel::Portable);
        assert_eq!(select(Some("on")), (auto, None));
        assert_eq!(select(Some("AUTO")), (auto, None));
        assert_ne!(auto, Kernel::Avx2Fma, "FMA is never auto-selected");
    }

    #[test]
    fn env_selection_warns_on_unknown_values() {
        for bad in ["avx512", "1", "yes", ""] {
            let (kernel, warning) = select(Some(bad));
            let (auto, _) = select(None);
            assert_eq!(kernel, auto, "{bad:?} must fall back to auto-detection");
            let w = warning.unwrap_or_else(|| panic!("{bad:?} must produce a warning"));
            assert!(w.contains("TORCHSPARSE_SIMD"), "warning must name the variable: {w}");
            assert!(w.contains(kernel.name()), "warning must name the fallback kernel: {w}");
        }
    }

    #[test]
    fn with_fma_only_upgrades_avx2() {
        assert_eq!(Kernel::Scalar.with_fma(), Kernel::Scalar);
        assert_eq!(Kernel::Portable.with_fma(), Kernel::Portable);
        let up = Kernel::Avx2.with_fma();
        if torchsparse_runtime::cpu_features().fma {
            assert_eq!(up, Kernel::Avx2Fma);
        } else {
            assert_eq!(up, Kernel::Avx2);
        }
    }

    #[test]
    fn packed_round_trip_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(k, n) in &[(1, 1), (3, 16), (5, 17), (8, 48), (13, 100), (64, 1), (0, 5)] {
            let b = random_matrix(&mut rng, k, n);
            let packed = PackedB::pack(&b);
            assert_eq!(packed.k(), k);
            assert_eq!(packed.n(), n);
            assert_eq!(bits(&packed.unpack()), bits(&b), "({k},{n})");
        }
    }

    #[test]
    fn all_kernels_bitwise_equal_dense_and_packed() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 16),
            (5, 3, 17),   // ragged tail columns
            (7, 16, 31),  // ragged rows and columns
            (64, 32, 64), // full tiles
            (9, 0, 8),    // k = 0
            (6, 1, 24),   // k = 1
        ] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let packed = PackedB::pack(&b);
            let mut reference = Matrix::zeros(m, n);
            run_panel(Kernel::Scalar, &a, BOperand::Dense(b.as_slice()), n, &mut reference);
            for kernel in every_kernel() {
                for (label, operand) in [
                    ("dense", BOperand::Dense(b.as_slice())),
                    ("packed", BOperand::Packed(&packed)),
                ] {
                    let mut c = Matrix::zeros(m, n);
                    run_panel(kernel, &a, operand, n, &mut c);
                    assert_eq!(
                        bits(&c),
                        bits(&reference),
                        "{} {label} ({m},{k},{n})",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_accumulate_into_existing_c() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 6, 9);
        let b = random_matrix(&mut rng, 9, 20);
        let packed = PackedB::pack(&b);
        let seed = random_matrix(&mut rng, 6, 20);
        let mut reference = seed.clone();
        run_panel(Kernel::Scalar, &a, BOperand::Dense(b.as_slice()), 20, &mut reference);
        for kernel in every_kernel() {
            let mut c = seed.clone();
            run_panel(kernel, &a, BOperand::Packed(&packed), 20, &mut c);
            assert_eq!(bits(&c), bits(&reference), "{}", kernel.name());
        }
    }

    #[test]
    fn zero_rows_in_a_are_skipped_consistently() {
        // Padded bmm rows are all-zero; every kernel must leave C untouched
        // for them, exactly like the scalar zero-skip.
        let mut rng = StdRng::seed_from_u64(17);
        let mut a = random_matrix(&mut rng, 8, 6);
        for j in 0..6 {
            a[(3, j)] = 0.0;
            a[(7, j)] = 0.0;
        }
        let b = random_matrix(&mut rng, 6, 19);
        let packed = PackedB::pack(&b);
        let mut reference = Matrix::zeros(8, 19);
        run_panel(Kernel::Scalar, &a, BOperand::Dense(b.as_slice()), 19, &mut reference);
        for kernel in every_kernel() {
            for operand in [BOperand::Dense(b.as_slice()), BOperand::Packed(&packed)] {
                let mut c = Matrix::zeros(8, 19);
                run_panel(kernel, &a, operand, 19, &mut c);
                assert_eq!(bits(&c), bits(&reference), "{}", kernel.name());
            }
        }
    }

    /// Unfused reference for the fused kernel: materialized gather, GEMM
    /// into a zeroed psum buffer, optional f16 psum rounding, then scatter
    /// accumulation — the exact sequence `gemm_gather_scatter` folds away.
    fn fused_reference(
        kernel: Kernel,
        a: &Matrix,
        b: &Matrix,
        entries: &[(u32, u32)],
        n_out: usize,
        round_f16: bool,
    ) -> Matrix {
        let (k, n) = b.shape();
        let mut gathered = Matrix::zeros(entries.len(), k);
        for (i, &(src, _)) in entries.iter().enumerate() {
            copy_row(kernel, gathered.row_mut(i), a.row(src as usize));
        }
        let mut psum = Matrix::zeros(entries.len(), n);
        run_panel(kernel, &gathered, BOperand::Dense(b.as_slice()), n, &mut psum);
        if round_f16 {
            f16_round_trip_slice(kernel, psum.as_mut_slice());
        }
        let mut out = Matrix::zeros(n_out, n);
        for (i, &(_, dst)) in entries.iter().enumerate() {
            accumulate_row(kernel, out.row_mut(dst as usize), psum.row(i));
        }
        out
    }

    fn run_fused(
        kernel: Kernel,
        a: &Matrix,
        b: BOperand<'_>,
        n: usize,
        entries: &[(u32, u32)],
        n_out: usize,
        round_f16: bool,
    ) -> Matrix {
        let in_rows: Vec<u32> = entries.iter().map(|&(s, _)| s).collect();
        let out_rel: Vec<u32> = entries.iter().map(|&(_, d)| d).collect();
        let mut out = Matrix::zeros(n_out, n);
        gemm_gather_scatter(
            kernel,
            a.as_slice(),
            a.cols(),
            &in_rows,
            b,
            n,
            round_f16,
            out.as_mut_slice(),
            &out_rel,
        );
        out
    }

    #[test]
    fn fused_matches_gather_gemm_scatter_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m_in, k, n, n_out, n_entries) in &[
            (10usize, 8usize, 16usize, 10usize, 10usize),
            (20, 4, 32, 12, 17),  // skinny k, MR-ragged entry count
            (15, 16, 31, 15, 15), // ragged tail columns
            (8, 3, 7, 9, 5),      // below one panel
            (30, 32, 64, 30, 64), // full tiles
            (6, 1, 24, 6, 3),     // k = 1
        ] {
            let a = random_matrix(&mut rng, m_in, k);
            let b = random_matrix(&mut rng, k, n);
            let packed = PackedB::pack(&b);
            let entries: Vec<(u32, u32)> = (0..n_entries)
                .map(|_| (rng.random_range(0..m_in as u32), rng.random_range(0..n_out as u32)))
                .collect();
            for round_f16 in [false, true] {
                let reference = fused_reference(Kernel::Scalar, &a, &b, &entries, n_out, round_f16);
                for kernel in every_kernel() {
                    for (label, operand) in [
                        ("dense", BOperand::Dense(b.as_slice())),
                        ("packed", BOperand::Packed(&packed)),
                    ] {
                        let out = run_fused(kernel, &a, operand, n, &entries, n_out, round_f16);
                        assert_eq!(
                            bits(&out),
                            bits(&reference),
                            "{} {label} ({m_in},{k},{n}) round={round_f16}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_skips_zero_gather_rows_like_the_scalar_loop() {
        let mut rng = StdRng::seed_from_u64(37);
        let mut a = random_matrix(&mut rng, 9, 6);
        for j in 0..6 {
            a[(2, j)] = 0.0;
        }
        let b = random_matrix(&mut rng, 6, 19);
        let packed = PackedB::pack(&b);
        let entries: Vec<(u32, u32)> = vec![(2, 0), (5, 0), (2, 3), (8, 2)];
        let reference = fused_reference(Kernel::Scalar, &a, &b, &entries, 4, false);
        for kernel in every_kernel() {
            for operand in [BOperand::Dense(b.as_slice()), BOperand::Packed(&packed)] {
                let out = run_fused(kernel, &a, operand, 19, &entries, 4, false);
                assert_eq!(bits(&out), bits(&reference), "{}", kernel.name());
            }
        }
    }

    #[test]
    fn copy_and_accumulate_rows_match_plain_loops() {
        let mut rng = StdRng::seed_from_u64(19);
        for len in [0, 1, 7, 8, 16, 31, 64, 100] {
            let src: Vec<f32> = (0..len).map(|_| rng.random_range(-4.0f32..4.0)).collect();
            let base: Vec<f32> = (0..len).map(|_| rng.random_range(-4.0f32..4.0)).collect();
            for kernel in every_kernel() {
                let mut dst = vec![0.0f32; len];
                copy_row(kernel, &mut dst, &src);
                assert_eq!(dst, src, "copy {} len {len}", kernel.name());

                let mut acc = base.clone();
                accumulate_row(kernel, &mut acc, &src);
                let expect: Vec<f32> = base.iter().zip(&src).map(|(b, s)| b + s).collect();
                assert_eq!(
                    acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "accumulate {} len {len}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn f16_round_trip_slice_matches_scalar_exhaustively() {
        // Every binary16 value expands to an f32 the round trip must fix.
        let inputs: Vec<f32> = (0..=u16::MAX).map(|b| Half::from_bits(b).to_f32()).collect();
        for kernel in every_kernel() {
            let mut data = inputs.clone();
            f16_round_trip_slice(kernel, &mut data);
            for (v, orig) in data.iter().zip(&inputs) {
                assert!(
                    v.to_bits() == orig.to_bits() || (v.is_nan() && orig.is_nan()),
                    "{}: {orig:?} -> {v:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn f16_conversions_match_scalar_on_hard_cases() {
        // Rounding boundaries, subnormals, overflow, signed zero, NaN/inf.
        let mut cases: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            65504.0,
            65520.0, // rounds to +inf in f16
            65519.9,
            -65520.0,
            5.960_464_5e-8,     // half the smallest f16 subnormal (ties to even)
            5.960_465e-8,       // just above -> smallest subnormal
            6.103_515_6e-5,     // smallest f16 normal
            6.097_555e-5,       // largest f16 subnormal
            1.0 + 1.0 / 2048.0, // exact tie -> even mantissa
            1.0 + 3.0 / 2048.0, // exact tie -> rounds up to even
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            1e-40, // f32 subnormal -> f16 zero
        ];
        let mut rng = StdRng::seed_from_u64(23);
        cases.extend((0..4096).map(|_| f32::from_bits(rng.random_range(0u32..=u32::MAX))));
        let reference: Vec<Half> = cases.iter().map(|&v| Half::from_f32(v)).collect();
        for kernel in every_kernel() {
            let mut quantized = Vec::new();
            f16_quantize_slice(kernel, &cases, &mut quantized);
            assert_eq!(quantized.len(), reference.len());
            for (i, (q, r)) in quantized.iter().zip(&reference).enumerate() {
                assert_eq!(q.to_bits(), r.to_bits(), "{} case {i} = {:?}", kernel.name(), cases[i]);
            }
            let mut expanded = Vec::new();
            f16_dequantize_slice(kernel, &reference, &mut expanded);
            let expect: Vec<f32> = reference.iter().map(|h| h.to_f32()).collect();
            for (i, (e, r)) in expanded.iter().zip(&expect).enumerate() {
                assert_eq!(e.to_bits(), r.to_bits(), "{} dequant case {i}", kernel.name());
            }
        }
    }

    #[test]
    fn int8_round_trip_matches_scalar_on_hard_cases() {
        let scale = 0.05f32;
        let q = Int8Quantizer::with_scale(scale);
        let mut cases: Vec<f32> = vec![
            0.0,
            -0.0,
            0.024_999,
            0.025, // exact half step -> away from zero
            -0.025,
            1e9,
            -1e9,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            6.35,
            -6.35,
            scale * 126.5, // tie at the clamp edge
        ];
        let mut rng = StdRng::seed_from_u64(29);
        cases.extend((0..8192).map(|_| f32::from_bits(rng.random_range(0u32..=u32::MAX))));
        let expect: Vec<f32> = cases.iter().map(|&v| q.dequantize(q.quantize(v))).collect();
        for kernel in every_kernel() {
            let mut data = cases.clone();
            int8_round_trip_slice(kernel, scale, &mut data);
            for (i, (d, e)) in data.iter().zip(&expect).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    e.to_bits(),
                    "{} case {i}: {:?} -> {d:?} want {e:?}",
                    kernel.name(),
                    cases[i]
                );
            }
        }
    }

    proptest! {
        /// Arbitrary shapes — including ragged tails (`n % NR != 0`,
        /// `rows % MR != 0`) and degenerate `k` — are bitwise identical
        /// across every non-FMA kernel and both B layouts.
        #[test]
        fn prop_kernels_bitwise_equal(
            m in 1usize..40, k in 0usize..24, n in 1usize..40, seed in 0u64..500
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let packed = PackedB::pack(&b);
            let mut reference = Matrix::zeros(m, n);
            run_panel(Kernel::Scalar, &a, BOperand::Dense(b.as_slice()), n, &mut reference);
            for kernel in every_kernel() {
                for operand in [BOperand::Dense(b.as_slice()), BOperand::Packed(&packed)] {
                    let mut c = Matrix::zeros(m, n);
                    run_panel(kernel, &a, operand, n, &mut c);
                    prop_assert!(
                        bits(&c) == bits(&reference),
                        "{} ({},{},{})", kernel.name(), m, k, n
                    );
                }
            }
        }

        /// The INT8 vector sweep is bit-exact for arbitrary f32 bit
        /// patterns, NaN and infinities included.
        #[test]
        fn prop_int8_round_trip_bit_exact(
            raw in proptest::collection::vec(0u32..u32::MAX, 1..64),
            scale_mil in 1u32..100_000,
        ) {
            let scale = scale_mil as f32 * 1e-4;
            let q = Int8Quantizer::with_scale(scale);
            let vals: Vec<f32> = raw.iter().map(|&b| f32::from_bits(b)).collect();
            let expect: Vec<u32> =
                vals.iter().map(|&v| q.dequantize(q.quantize(v)).to_bits()).collect();
            for kernel in every_kernel() {
                let mut data = vals.clone();
                int8_round_trip_slice(kernel, scale, &mut data);
                let got: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
                prop_assert!(got == expect, "{}", kernel.name());
            }
        }

        /// The F16 round trip is bit-exact for arbitrary bit patterns
        /// (NaNs compare as both-NaN: payloads are canonicalized equally).
        #[test]
        fn prop_f16_round_trip_bit_exact(
            raw in proptest::collection::vec(0u32..u32::MAX, 1..64),
        ) {
            let vals: Vec<f32> = raw.iter().map(|&b| f32::from_bits(b)).collect();
            let expect: Vec<u32> =
                vals.iter().map(|&v| Half::from_f32(v).to_f32().to_bits()).collect();
            for kernel in every_kernel() {
                let mut data = vals.clone();
                f16_round_trip_slice(kernel, &mut data);
                let got: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
                prop_assert!(got == expect, "{}", kernel.name());
            }
        }
    }
}
