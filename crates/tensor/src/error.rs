use std::fmt;

/// Error type for dense tensor operations.
///
/// Returned by every fallible public function in this crate. Implements
/// [`std::error::Error`] so it composes with downstream error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands have incompatible shapes for the requested operation.
    ///
    /// Carries the operation name and the offending `(rows, cols)` pairs.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"mm"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// A batched operation received batches of differing lengths.
    BatchMismatch {
        /// Number of matrices in the left batch.
        lhs: usize,
        /// Number of matrices in the right batch.
        rhs: usize,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The requested `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// A constructor received a data buffer whose length does not match the
    /// requested shape.
    DataLengthMismatch {
        /// Expected buffer length (`rows * cols`).
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BatchMismatch { lhs, rhs } => {
                write!(f, "batched operation with {lhs} lhs matrices but {rhs} rhs matrices")
            }
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::DataLengthMismatch { expected, actual } => {
                write!(f, "data buffer has {actual} elements, shape requires {expected}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch { op: "mm", lhs: (2, 3), rhs: (4, 5) };
        assert_eq!(e.to_string(), "shape mismatch in mm: lhs is 2x3, rhs is 4x5");
    }

    #[test]
    fn display_batch_mismatch() {
        let e = TensorError::BatchMismatch { lhs: 2, rhs: 3 };
        assert!(e.to_string().contains("2 lhs"));
        assert!(e.to_string().contains("3 rhs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
