//! Dense volumetric 3D convolution — the correctness oracle.
//!
//! The sparse engine must compute exactly what a dense convolution computes
//! at nonzero sites (the "submanifold" constraint pins outputs to the input
//! sparsity pattern). To verify every dataflow and grouping strategy we keep
//! a brutally simple dense reference: a `D x H x W x C` volume and a direct
//! 7-loop convolution. It is only used in tests and examples — it is far too
//! slow and memory-hungry for real scenes, which is the paper's motivation
//! for sparse convolution in the first place.

use crate::{Matrix, TensorError};

/// A dense 4D volume with shape `(dim[0], dim[1], dim[2], channels)`.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::dense::DenseVolume;
///
/// let mut v = DenseVolume::zeros([4, 4, 4], 2);
/// v.set([1, 2, 3], &[1.0, -1.0]);
/// assert_eq!(v.at([1, 2, 3]), &[1.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVolume {
    dims: [usize; 3],
    channels: usize,
    data: Vec<f32>,
}

impl DenseVolume {
    /// Creates a zero-filled volume.
    pub fn zeros(dims: [usize; 3], channels: usize) -> Self {
        let len = dims[0] * dims[1] * dims[2] * channels;
        DenseVolume { dims, channels, data: vec![0.0; len] }
    }

    /// Spatial dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn offset(&self, p: [usize; 3]) -> usize {
        debug_assert!(p[0] < self.dims[0] && p[1] < self.dims[1] && p[2] < self.dims[2]);
        ((p[0] * self.dims[1] + p[1]) * self.dims[2] + p[2]) * self.channels
    }

    /// Feature vector at a voxel.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn at(&self, p: [usize; 3]) -> &[f32] {
        let o = self.offset(p);
        &self.data[o..o + self.channels]
    }

    /// Writes the feature vector at a voxel.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or `feat` has the wrong length.
    pub fn set(&mut self, p: [usize; 3], feat: &[f32]) {
        assert_eq!(feat.len(), self.channels, "feature length mismatch");
        let o = self.offset(p);
        self.data[o..o + self.channels].copy_from_slice(feat);
    }

    /// Whether the voxel has any nonzero channel.
    pub fn is_nonzero(&self, p: [usize; 3]) -> bool {
        self.at(p).iter().any(|&v| v != 0.0)
    }
}

/// Weights for a dense/sparse 3D convolution.
///
/// Layout matches the paper: `K^3` matrices of shape `Cin x Cout`, indexed by
/// the kernel offset enumeration order chosen by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWeights {
    kernel_size: usize,
    c_in: usize,
    c_out: usize,
    /// One `Cin x Cout` matrix per kernel offset, in offset-enumeration order.
    pub per_offset: Vec<Matrix>,
}

impl ConvWeights {
    /// Creates weights with every per-offset matrix provided explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the number of matrices is not
    /// `kernel_size^3` or any matrix deviates from `c_in x c_out`.
    pub fn new(
        kernel_size: usize,
        c_in: usize,
        c_out: usize,
        per_offset: Vec<Matrix>,
    ) -> Result<Self, TensorError> {
        let volume = kernel_size * kernel_size * kernel_size;
        if per_offset.len() != volume {
            return Err(TensorError::ShapeMismatch {
                op: "conv_weights",
                lhs: (per_offset.len(), 0),
                rhs: (volume, 0),
            });
        }
        for m in &per_offset {
            if m.shape() != (c_in, c_out) {
                return Err(TensorError::ShapeMismatch {
                    op: "conv_weights",
                    lhs: m.shape(),
                    rhs: (c_in, c_out),
                });
            }
        }
        Ok(ConvWeights { kernel_size, c_in, c_out, per_offset })
    }

    /// Kernel size `K` (the kernel volume is `K^3`).
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }
}

/// Computes a *submanifold* dense convolution: for every nonzero input voxel,
/// accumulates `x[p + delta] . W[delta]` over all in-bounds kernel offsets —
/// outputs exist only at input sites, matching sparse convolution semantics
/// with stride 1 (paper Eq. 1 with `P_out = P_in`).
///
/// `offsets` supplies the kernel offset enumeration, index-aligned with
/// `weights.per_offset`; offsets range over `{-(K-1)/2 ..= (K-1)/2}^3`.
///
/// # Panics
///
/// Panics if `offsets.len() != weights.per_offset.len()`.
pub fn submanifold_conv3d_reference(
    input: &DenseVolume,
    weights: &ConvWeights,
    offsets: &[[i32; 3]],
) -> DenseVolume {
    assert_eq!(offsets.len(), weights.per_offset.len(), "offset/weight count mismatch");
    let dims = input.dims();
    let mut out = DenseVolume::zeros(dims, weights.c_out());
    for x in 0..dims[0] {
        for y in 0..dims[1] {
            for z in 0..dims[2] {
                if !input.is_nonzero([x, y, z]) {
                    continue; // submanifold: outputs only at input sites
                }
                let mut acc = vec![0.0f32; weights.c_out()];
                for (n, d) in offsets.iter().enumerate() {
                    let sx = x as i32 + d[0];
                    let sy = y as i32 + d[1];
                    let sz = z as i32 + d[2];
                    if sx < 0
                        || sy < 0
                        || sz < 0
                        || sx >= dims[0] as i32
                        || sy >= dims[1] as i32
                        || sz >= dims[2] as i32
                    {
                        continue;
                    }
                    let src = [sx as usize, sy as usize, sz as usize];
                    if !input.is_nonzero(src) {
                        continue;
                    }
                    let feat = input.at(src);
                    let w = &weights.per_offset[n];
                    for ci in 0..weights.c_in() {
                        let f = feat[ci];
                        if f == 0.0 {
                            continue;
                        }
                        for (co, a) in acc.iter_mut().enumerate() {
                            *a += f * w[(ci, co)];
                        }
                    }
                }
                out.set([x, y, z], &acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets_k3() -> Vec<[i32; 3]> {
        let mut v = Vec::new();
        for x in -1..=1 {
            for y in -1..=1 {
                for z in -1..=1 {
                    v.push([x, y, z]);
                }
            }
        }
        v
    }

    fn identity_weights(k: usize, c: usize) -> ConvWeights {
        let volume = k * k * k;
        let center = volume / 2;
        let per_offset = (0..volume)
            .map(|i| if i == center { Matrix::eye(c) } else { Matrix::zeros(c, c) })
            .collect();
        ConvWeights::new(k, c, c, per_offset).unwrap()
    }

    #[test]
    fn volume_get_set() {
        let mut v = DenseVolume::zeros([2, 3, 4], 2);
        v.set([1, 2, 3], &[5.0, 6.0]);
        assert_eq!(v.at([1, 2, 3]), &[5.0, 6.0]);
        assert!(v.is_nonzero([1, 2, 3]));
        assert!(!v.is_nonzero([0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn set_rejects_wrong_feature_len() {
        DenseVolume::zeros([2, 2, 2], 3).set([0, 0, 0], &[1.0]);
    }

    #[test]
    fn weights_validation() {
        assert!(ConvWeights::new(3, 2, 2, vec![Matrix::zeros(2, 2); 27]).is_ok());
        assert!(ConvWeights::new(3, 2, 2, vec![Matrix::zeros(2, 2); 26]).is_err());
        assert!(ConvWeights::new(3, 2, 2, vec![Matrix::zeros(2, 3); 27]).is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut input = DenseVolume::zeros([4, 4, 4], 2);
        input.set([1, 1, 1], &[1.0, 2.0]);
        input.set([2, 3, 0], &[-1.0, 0.5]);
        let w = identity_weights(3, 2);
        let out = submanifold_conv3d_reference(&input, &w, &offsets_k3());
        assert_eq!(out.at([1, 1, 1]), &[1.0, 2.0]);
        assert_eq!(out.at([2, 3, 0]), &[-1.0, 0.5]);
        assert_eq!(out.at([0, 0, 0]), &[0.0, 0.0]);
    }

    #[test]
    fn submanifold_keeps_sparsity_pattern() {
        // A uniform all-ones kernel would dilate in a regular convolution;
        // submanifold must keep outputs only at input sites.
        let mut input = DenseVolume::zeros([5, 5, 5], 1);
        input.set([2, 2, 2], &[1.0]);
        let per_offset = vec![Matrix::filled(1, 1, 1.0); 27];
        let w = ConvWeights::new(3, 1, 1, per_offset).unwrap();
        let out = submanifold_conv3d_reference(&input, &w, &offsets_k3());
        assert_eq!(out.at([2, 2, 2]), &[1.0]);
        assert_eq!(out.at([2, 2, 1]), &[0.0], "no dilation allowed");
    }

    #[test]
    fn neighbors_contribute() {
        let mut input = DenseVolume::zeros([3, 3, 3], 1);
        input.set([1, 1, 1], &[2.0]);
        input.set([1, 1, 0], &[3.0]);
        let per_offset = vec![Matrix::filled(1, 1, 1.0); 27];
        let w = ConvWeights::new(3, 1, 1, per_offset).unwrap();
        let out = submanifold_conv3d_reference(&input, &w, &offsets_k3());
        // Each nonzero output sums both nonzero inputs (both within reach).
        assert_eq!(out.at([1, 1, 1]), &[5.0]);
        assert_eq!(out.at([1, 1, 0]), &[5.0]);
    }

    #[test]
    fn boundary_offsets_are_skipped() {
        let mut input = DenseVolume::zeros([2, 2, 2], 1);
        input.set([0, 0, 0], &[1.0]);
        let per_offset = vec![Matrix::filled(1, 1, 1.0); 27];
        let w = ConvWeights::new(3, 1, 1, per_offset).unwrap();
        let out = submanifold_conv3d_reference(&input, &w, &offsets_k3());
        assert_eq!(out.at([0, 0, 0]), &[1.0]); // only the center tap lands in-bounds on a nonzero
    }
}
