//! Feature quantization (§4.3.1 of the paper).
//!
//! TorchSparse stores features in FP16 to halve DRAM traffic; INT8 is
//! investigated and rejected because scatter reduction needs ≥16-bit
//! intermediates. This module implements both so the ablation can be
//! reproduced faithfully:
//!
//! - [`quantize_f16`] / [`dequantize_f16`]: lossless-storage-format round
//!   trips through [`Half`].
//! - [`round_trip_f16`]: convenience "simulate FP16 storage" pass over a
//!   whole [`Matrix`] — exactly what gathering an FP16 buffer into an FP32
//!   GEMM does.
//! - [`Int8Quantizer`]: symmetric per-tensor INT8 with an f32 scale.

use crate::microkernel::{self, Kernel};
use crate::{Half, Matrix};
use torchsparse_runtime::ThreadPool;

/// Quantizes an `f32` slice to binary16 storage.
///
/// Runs the process-selected SIMD kernel (F16C hardware conversion on AVX2
/// hosts); results are bitwise identical to per-element
/// [`Half::from_f32`] for every input.
pub fn quantize_f16(values: &[f32]) -> Vec<Half> {
    let mut out = Vec::new();
    microkernel::f16_quantize_slice(microkernel::active(), values, &mut out);
    out
}

/// Expands binary16 storage back to `f32`.
///
/// Vectorized like [`quantize_f16`]; bitwise identical to per-element
/// [`Half::to_f32`].
pub fn dequantize_f16(values: &[Half]) -> Vec<f32> {
    let mut out = Vec::new();
    microkernel::f16_dequantize_slice(microkernel::active(), values, &mut out);
    out
}

/// Simulates FP16 feature storage on a matrix: every element is rounded to
/// the nearest binary16 and expanded back to `f32`.
///
/// The sparse engine applies this at layer boundaries when the FP16
/// optimization is enabled, so that numerical results reflect genuine
/// half-precision storage (the GEMM itself accumulates in FP32, as tensor
/// cores do).
pub fn round_trip_f16(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    round_trip_f16_in_place(&mut out);
    out
}

/// [`round_trip_f16`] without the copy: rounds every element of `m` to the
/// nearest binary16 in place. Used by the dataflow on workspace-pooled
/// partial-sum buffers so FP16 storage simulation allocates nothing.
pub fn round_trip_f16_in_place(m: &mut Matrix) {
    microkernel::f16_round_trip_slice(microkernel::active(), m.as_mut_slice());
}

/// [`round_trip_f16_in_place`] with the slice sweep dispatched onto a
/// worker pool. The rounding of each element is independent, so the result
/// is bitwise identical to the serial sweep at every thread count.
pub fn round_trip_f16_in_place_on(pool: &ThreadPool, m: &mut Matrix) {
    round_trip_f16_in_place_kernel(pool, m, microkernel::active());
}

/// [`round_trip_f16_in_place_on`] with an explicit kernel — the engine's
/// configuration layer resolves its `SimdPolicy` to a kernel once and
/// threads it through here.
pub fn round_trip_f16_in_place_kernel(pool: &ThreadPool, m: &mut Matrix, kernel: Kernel) {
    m.par_map_slices_inplace(pool, |chunk| microkernel::f16_round_trip_slice(kernel, chunk));
}

/// Symmetric per-tensor INT8 quantizer.
///
/// `q = clamp(round(x / scale), -127, 127)`, `x ≈ q * scale`. The scale is
/// chosen from the maximum absolute value of the calibration data.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::quant::Int8Quantizer;
///
/// let q = Int8Quantizer::calibrate(&[0.5, -2.0, 1.0]);
/// let code = q.quantize(1.0);
/// assert!((q.dequantize(code) - 1.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Quantizer {
    scale: f32,
}

impl Int8Quantizer {
    /// Builds a quantizer whose range covers the calibration data.
    ///
    /// An all-zero (or empty) calibration set yields a unit scale so that
    /// quantization remains well-defined.
    pub fn calibrate(values: &[f32]) -> Self {
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        Int8Quantizer { scale }
    }

    /// Builds a quantizer with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn with_scale(scale: f32) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be finite and positive");
        Int8Quantizer { scale }
    }

    /// The dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value.
    pub fn quantize(&self, value: f32) -> i8 {
        (value / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, code: i8) -> f32 {
        code as f32 * self.scale
    }

    /// Quantize-dequantize round trip over a matrix, simulating INT8 storage.
    pub fn round_trip(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        self.round_trip_slice(microkernel::active(), out.as_mut_slice());
        out
    }

    /// Round trip over a raw slice with an explicit kernel. The SIMD path
    /// is bit-exact against the scalar `dequantize(quantize(v))` for every
    /// `f32` input, NaN and infinities included (see
    /// [`microkernel::int8_round_trip_slice`]).
    pub fn round_trip_slice(&self, kernel: Kernel, data: &mut [f32]) {
        microkernel::int8_round_trip_slice(kernel, self.scale, data);
    }

    /// In-place round trip over a matrix, chunk-parallel on `pool` with an
    /// explicit kernel; bitwise identical to the serial sweep at every
    /// thread count.
    pub fn round_trip_in_place_kernel(&self, pool: &ThreadPool, m: &mut Matrix, kernel: Kernel) {
        let q = *self;
        m.par_map_slices_inplace(pool, |chunk| q.round_trip_slice(kernel, chunk));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f16_roundtrip_preserves_exact_values() {
        let vals = [0.0, 1.0, -2.5, 1024.0, 0.125];
        let back = dequantize_f16(&quantize_f16(&vals));
        assert_eq!(back, vals);
    }

    #[test]
    fn f16_roundtrip_matrix() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32 + 0.0001);
        let rt = round_trip_f16(&m);
        // Small error introduced, bounded by f16 epsilon.
        let diff = m.max_abs_diff(&rt).unwrap();
        assert!(diff > 0.0 && diff < 0.01);
        // Round trip is idempotent.
        assert_eq!(round_trip_f16(&rt), rt);
    }

    #[test]
    fn int8_calibrate_covers_range() {
        let q = Int8Quantizer::calibrate(&[-10.0, 3.0, 7.5]);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
        assert!((q.dequantize(q.quantize(5.0)) - 5.0).abs() < q.scale());
    }

    #[test]
    fn int8_zero_calibration_is_safe() {
        let q = Int8Quantizer::calibrate(&[]);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.quantize(0.0), 0);
        let q = Int8Quantizer::calibrate(&[0.0, 0.0]);
        assert_eq!(q.quantize(0.5), 1);
    }

    #[test]
    fn int8_clamps_outliers() {
        let q = Int8Quantizer::with_scale(0.1);
        assert_eq!(q.quantize(1e9), 127);
        assert_eq!(q.quantize(-1e9), -127);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn int8_rejects_bad_scale() {
        Int8Quantizer::with_scale(0.0);
    }

    #[test]
    fn int8_roundtrip_idempotent() {
        let q = Int8Quantizer::with_scale(0.05);
        let m = Matrix::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.3);
        let once = q.round_trip(&m);
        assert_eq!(q.round_trip(&once), once);
    }

    proptest! {
        #[test]
        fn prop_f16_error_bounded(v in -60000.0f32..60000.0) {
            let h = Half::from_f32(v);
            let err = (h.to_f32() - v).abs();
            // Relative error for normals, absolute bound near zero.
            prop_assert!(err <= v.abs() / 1024.0 + 1e-7, "v={v} err={err}");
        }

        #[test]
        fn prop_int8_error_within_half_scale(v in -100.0f32..100.0) {
            let q = Int8Quantizer::calibrate(&[100.0]);
            let back = q.dequantize(q.quantize(v));
            prop_assert!((back - v).abs() <= q.scale() / 2.0 + 1e-6);
        }
    }
}
