//! Blocked matrix multiplication dispatched onto the shared runtime pool.
//!
//! Sparse convolution lowers to many GEMMs of shape `|map| x Cin x Cout`
//! (Algorithm 2 of the paper). This module provides:
//!
//! - [`mm`] / [`mm_on`]: `C = A * B` with cache-blocked loops, partitioned
//!   into row panels executed on a persistent [`ThreadPool`] — no per-call
//!   thread spawning (the pre-runtime engine paid a `thread::scope` spawn
//!   per GEMM call).
//! - [`mm_accumulate`] / [`mm_accumulate_on`]: `C += A * B`, the
//!   scatter-accumulate-friendly variant.
//! - [`bmm`] / [`bmm_on`] / [`bmm_into_on`]: batched GEMM over equal-shaped
//!   matrices, mirroring cuBLAS `gemmStridedBatched` as used by the paper's
//!   grouped matmul (§4.2). The batched form flattens *every member's row
//!   panels into one task wave*, so group members of Algorithm 5 run
//!   concurrently instead of sequentially.
//!
//! All variants produce bitwise-identical results to the naive triple loop
//! (same accumulation order within each output element) for every thread
//! count — the panel partition is fixed by [`PANEL`], never by the lane
//! count, so scheduling cannot change the arithmetic. The tests and the
//! root crate's parallel-determinism property tests verify this.
//!
//! Arithmetic within a panel is delegated to the
//! [`microkernel`](crate::microkernel) module, which picks a register-tiled
//! SIMD kernel at process start (see [`GemmOpts`] for per-call overrides).
//! The packed entry points ([`mm_into_packed_on`], [`bmm_into_packed_on`])
//! accept weights pre-packed into the microkernel's panel-major layout so
//! steady-state inference never re-streams row-major B.

use crate::microkernel::{self, BOperand, Kernel, PackedB};
use crate::{Matrix, TensorError};
use torchsparse_runtime::{Task, ThreadPool};

/// Row-panel size for parallel partitioning.
const PANEL: usize = 64;
/// Below this flop count a GEMM is executed inline: queueing tasks costs
/// more than the arithmetic. Dispatching a task costs on the order of a few
/// microseconds; this bound keeps inline only the GEMMs whose whole runtime
/// is comparable to that. Recalibrated for the SIMD microkernel with the
/// `gemm_kernels` bench on the reference host (AVX2, single core, release
/// profile): the vectorized kernel sustains 26-43 GFLOP/s on paper-shaped
/// GEMMs vs 9-18 GFLOP/s for the scalar loop (~2.3-4.8x), so 1e6 flops is
/// ~25-40 us of microkernel work — comfortably above per-task dispatch cost,
/// where the old 2.5e5 bound (tuned for the scalar loop) would now inline
/// barely ~6 us of work per task.
const MIN_PARALLEL_FLOPS: f64 = 1.0e6;

/// Per-call kernel selection for the `_with` GEMM entry points.
///
/// The default (`GemmOpts::default()`) uses the process-wide selection from
/// [`microkernel::active`] with FMA off — the bitwise-deterministic
/// configuration. `fma` upgrades an AVX2 selection to fused multiply-add,
/// which changes rounding and is therefore opt-in
/// (`OptimizationConfig::fma_gemm` in the core crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmOpts {
    /// Explicit kernel override; `None` uses [`microkernel::active`].
    pub kernel: Option<Kernel>,
    /// Allow fused multiply-add (changes rounding; never on by default).
    pub fma: bool,
    /// Row-panel width for parallel partitioning; `None` uses [`PANEL`].
    /// Every output row is computed by exactly one panel with the same
    /// k-major accumulation order, so the width changes scheduling
    /// granularity only — results are bitwise identical for every value.
    pub panel_rows: Option<usize>,
}

impl GemmOpts {
    /// Options pinned to a specific kernel.
    pub fn with_kernel(kernel: Kernel) -> GemmOpts {
        GemmOpts { kernel: Some(kernel), ..GemmOpts::default() }
    }

    /// Resolves the kernel these options denote.
    pub fn resolve(self) -> Kernel {
        let k = self.kernel.unwrap_or_else(microkernel::active);
        if self.fma {
            k.with_fma()
        } else {
            k
        }
    }

    /// Resolves the row-panel width these options denote (never zero).
    pub fn resolve_panel(self) -> usize {
        self.panel_rows.unwrap_or(PANEL).max(1)
    }
}

/// Computes `A * B` on the global runtime pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::{Matrix, gemm};
///
/// # fn main() -> Result<(), torchsparse_tensor::TensorError> {
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(3, 4, 2.0);
/// let c = gemm::mm(&a, &b)?;
/// assert_eq!(c[(1, 2)], 6.0);
/// # Ok(())
/// # }
/// ```
pub fn mm(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    mm_on(ThreadPool::global(), a, b)
}

/// Computes `A * B` on an explicit pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn mm_on(pool: &ThreadPool, a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    mm_into_on(pool, a, b, &mut c)?;
    Ok(c)
}

/// Computes `C += A * B` into an existing accumulator on the global pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions disagree
/// or `C` has the wrong shape.
pub fn mm_accumulate(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), TensorError> {
    mm_into_on(ThreadPool::global(), a, b, c)
}

/// [`mm_accumulate`] on an explicit pool.
///
/// # Errors
///
/// As [`mm_accumulate`].
pub fn mm_accumulate_on(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> Result<(), TensorError> {
    mm_into_on(pool, a, b, c)
}

fn check_shapes(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<(), TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(TensorError::ShapeMismatch {
            op: "mm_out",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Shared panel driver for all `mm_into` variants: partitions C into
/// `panel`-row panels ([`PANEL`] rows unless the options override it) and
/// runs the microkernel over each, inline or on the pool. The partition
/// never depends on the pool width.
#[allow(clippy::too_many_arguments)] // kernel + panel width + raw GEMM shape
fn mm_into_dispatch(
    pool: &ThreadPool,
    kernel: Kernel,
    panel_rows: usize,
    a: &Matrix,
    b: BOperand<'_>,
    k: usize,
    n: usize,
    c: &mut Matrix,
) {
    let m = a.rows();
    if m == 0 || n == 0 {
        return;
    }
    let a_data = a.as_slice();
    let c_data = c.as_mut_slice();

    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    if pool.threads() <= 1 && !pool.is_recording() || flops < MIN_PARALLEL_FLOPS || m <= panel_rows
    {
        for (i, panel) in c_data.chunks_mut(panel_rows * n).enumerate() {
            microkernel::gemm_panel(kernel, a_data, b, k, n, i * panel_rows, panel);
        }
        return;
    }
    let tasks: Vec<Task<'_>> = c_data
        .chunks_mut(panel_rows * n)
        .enumerate()
        .map(|(i, panel)| {
            Box::new(move || {
                microkernel::gemm_panel(kernel, a_data, b, k, n, i * panel_rows, panel)
            }) as Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// `C += A * B` with panels dispatched onto `pool`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn mm_into_on(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> Result<(), TensorError> {
    mm_into_with(pool, a, b, c, GemmOpts::default())
}

/// [`mm_into_on`] with explicit kernel options.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn mm_into_with(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    opts: GemmOpts,
) -> Result<(), TensorError> {
    check_shapes(a, b, c)?;
    let k = a.cols();
    if k == 0 {
        return Ok(());
    }
    mm_into_dispatch(
        pool,
        opts.resolve(),
        opts.resolve_panel(),
        a,
        BOperand::Dense(b.as_slice()),
        k,
        b.cols(),
        c,
    );
    Ok(())
}

/// `C += A * B` where B was pre-packed with [`PackedB::pack`].
///
/// This is the steady-state inference entry point: weights are constant
/// across frames, so the core crate packs each kernel-offset matrix once
/// (at plan time or on first use) and every subsequent GEMM streams the
/// packed panels sequentially. Results are bitwise identical to the dense
/// form for the same kernel options.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn mm_into_packed_on(
    pool: &ThreadPool,
    a: &Matrix,
    b: &PackedB,
    c: &mut Matrix,
    opts: GemmOpts,
) -> Result<(), TensorError> {
    if a.cols() != b.k() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: (b.k(), b.n()) });
    }
    if c.shape() != (a.rows(), b.n()) {
        return Err(TensorError::ShapeMismatch {
            op: "mm_out",
            lhs: c.shape(),
            rhs: (a.rows(), b.n()),
        });
    }
    let k = a.cols();
    if k == 0 {
        return Ok(());
    }
    mm_into_dispatch(
        pool,
        opts.resolve(),
        opts.resolve_panel(),
        a,
        BOperand::Packed(b),
        k,
        b.n(),
        c,
    );
    Ok(())
}

/// Batched matrix multiplication: `C[i] = A[i] * B[i]` on the global pool.
///
/// All `A[i]` must share one shape and all `B[i]` another (the cuBLAS
/// strided-batched contract). The paper's grouped matmul pads per-weight
/// feature buffers to a common row count and then calls `bmm` (Figure 6c/d,
/// Algorithm 4).
///
/// # Errors
///
/// Returns [`TensorError::BatchMismatch`] if the batch lengths differ and
/// [`TensorError::ShapeMismatch`] if any matrix deviates from its batch shape
/// or the inner dimensions disagree.
pub fn bmm(a: &[Matrix], b: &[Matrix]) -> Result<Vec<Matrix>, TensorError> {
    bmm_on(ThreadPool::global(), a, b)
}

/// [`bmm`] on an explicit pool.
///
/// # Errors
///
/// As [`bmm`].
pub fn bmm_on(pool: &ThreadPool, a: &[Matrix], b: &[Matrix]) -> Result<Vec<Matrix>, TensorError> {
    if a.len() != b.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len() });
    }
    if a.is_empty() {
        return Ok(Vec::new());
    }
    let mut out: Vec<Matrix> = a.iter().map(|ai| Matrix::zeros(ai.rows(), b[0].cols())).collect();
    let a_refs: Vec<&Matrix> = a.iter().collect();
    let b_refs: Vec<&Matrix> = b.iter().collect();
    bmm_into_on(pool, &a_refs, &b_refs, &mut out)?;
    Ok(out)
}

/// Batched GEMM into caller-provided outputs, with the row panels of *all*
/// batch members flattened into a single task wave.
///
/// This is the runtime's grouped-matmul primitive: a bmm group from
/// Algorithm 5 hands its per-offset gather buffers (typically recycled
/// workspace matrices) and receives every member's partial sums computed
/// concurrently — one wave, no barrier between members.
///
/// # Errors
///
/// Returns [`TensorError::BatchMismatch`] if the slice lengths differ and
/// [`TensorError::ShapeMismatch`] if any matrix deviates from its batch
/// shape, an output has the wrong shape, or inner dimensions disagree.
pub fn bmm_into_on(
    pool: &ThreadPool,
    a: &[&Matrix],
    b: &[&Matrix],
    out: &mut [Matrix],
) -> Result<(), TensorError> {
    bmm_into_with(pool, a, b, out, GemmOpts::default())
}

/// [`bmm_into_on`] with explicit kernel options.
///
/// # Errors
///
/// As [`bmm_into_on`].
pub fn bmm_into_with(
    pool: &ThreadPool,
    a: &[&Matrix],
    b: &[&Matrix],
    out: &mut [Matrix],
    opts: GemmOpts,
) -> Result<(), TensorError> {
    if a.len() != b.len() || a.len() != out.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len().min(out.len()) });
    }
    if a.is_empty() {
        return Ok(());
    }
    let b_shape = b[0].shape();
    for m in b {
        if m.shape() != b_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_rhs", lhs: b_shape, rhs: m.shape() });
        }
    }
    let operands: Vec<BOperand<'_>> = b.iter().map(|bi| BOperand::Dense(bi.as_slice())).collect();
    bmm_dispatch(pool, opts.resolve(), opts.resolve_panel(), a, &operands, b_shape, out)
}

/// Batched GEMM over pre-packed weights: `C[i] += A[i] * packed[i]`.
///
/// The grouped-matmul counterpart of [`mm_into_packed_on`]: every member of
/// an Algorithm 5 bmm group multiplies against a weight matrix that was
/// packed once at plan time, and all members' row panels still flatten into
/// a single task wave.
///
/// # Errors
///
/// As [`bmm_into_on`].
pub fn bmm_into_packed_on(
    pool: &ThreadPool,
    a: &[&Matrix],
    b: &[&PackedB],
    out: &mut [Matrix],
    opts: GemmOpts,
) -> Result<(), TensorError> {
    if a.len() != b.len() || a.len() != out.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len().min(out.len()) });
    }
    if a.is_empty() {
        return Ok(());
    }
    let b_shape = (b[0].k(), b[0].n());
    for pb in b {
        if (pb.k(), pb.n()) != b_shape {
            return Err(TensorError::ShapeMismatch {
                op: "bmm_rhs",
                lhs: b_shape,
                rhs: (pb.k(), pb.n()),
            });
        }
    }
    let operands: Vec<BOperand<'_>> = b.iter().map(|pb| BOperand::Packed(pb)).collect();
    bmm_dispatch(pool, opts.resolve(), opts.resolve_panel(), a, &operands, b_shape, out)
}

/// Shared driver for the batched variants: validates member shapes, then
/// flattens every member's `panel_rows`-row panels into one task wave.
fn bmm_dispatch(
    pool: &ThreadPool,
    kernel: Kernel,
    panel_rows: usize,
    a: &[&Matrix],
    b: &[BOperand<'_>],
    b_shape: (usize, usize),
    out: &mut [Matrix],
) -> Result<(), TensorError> {
    let a_shape = a[0].shape();
    for m in a {
        if m.shape() != a_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_lhs", lhs: a_shape, rhs: m.shape() });
        }
    }
    if a_shape.1 != b_shape.0 {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a_shape, rhs: b_shape });
    }
    for (ai, ci) in a.iter().zip(out.iter()) {
        if ci.shape() != (ai.rows(), b_shape.1) {
            return Err(TensorError::ShapeMismatch {
                op: "mm_out",
                lhs: ci.shape(),
                rhs: (ai.rows(), b_shape.1),
            });
        }
    }
    let (m, k) = a_shape;
    let n = b_shape.1;
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let batch_flops = 2.0 * (a.len() * m) as f64 * n as f64 * k as f64;
    if pool.threads() <= 1 && !pool.is_recording() || batch_flops < MIN_PARALLEL_FLOPS {
        for ((ai, bi), ci) in a.iter().zip(b).zip(out.iter_mut()) {
            for (p, panel) in ci.as_mut_slice().chunks_mut(panel_rows * n).enumerate() {
                microkernel::gemm_panel(kernel, ai.as_slice(), *bi, k, n, p * panel_rows, panel);
            }
        }
        return Ok(());
    }
    let mut tasks: Vec<Task<'_>> = Vec::new();
    for ((ai, bi), ci) in a.iter().zip(b).zip(out.iter_mut()) {
        let a_data = ai.as_slice();
        let operand = *bi;
        for (p, panel) in ci.as_mut_slice().chunks_mut(panel_rows * n).enumerate() {
            tasks.push(Box::new(move || {
                microkernel::gemm_panel(kernel, a_data, operand, k, n, p * panel_rows, panel)
            }));
        }
    }
    pool.run(tasks);
    Ok(())
}

/// Naive reference GEMM (triple loop) used by tests as the ground truth.
pub fn mm_reference(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for kk in 0..a.cols() {
            let av = a[(i, kk)];
            for j in 0..b.cols() {
                c[(i, j)] += av * b[(kk, j)];
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 7, 7);
        assert_eq!(mm(&a, &Matrix::eye(7)).unwrap(), a);
        assert_eq!(mm(&Matrix::eye(7), &a).unwrap(), a);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(mm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(mm(&a, &b).unwrap().shape(), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        assert_eq!(mm(&a, &b).unwrap(), Matrix::zeros(2, 2));
    }

    #[test]
    fn matches_reference_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 33, 9), (130, 64, 48), (65, 300, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            let diff = fast.max_abs_diff(&slow).unwrap();
            assert!(diff < 1e-4, "({m},{k},{n}) diff {diff}");
        }
    }

    #[test]
    fn large_parallel_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 200, 128);
        let b = random_matrix(&mut rng, 128, 96);
        let fast = mm(&a, &b).unwrap();
        let slow = mm_reference(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn bitwise_identical_across_pool_widths() {
        // The partition is fixed by PANEL, not by lane count, so every pool
        // width computes exactly the same bits.
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 300, 200);
        let b = random_matrix(&mut rng, 200, 64);
        let serial = mm_on(&ThreadPool::new(1), &a, &b).unwrap();
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = mm_on(&pool, &a, &b).unwrap();
            assert_eq!(
                serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn panel_width_is_bitwise_neutral() {
        // The autotuner varies the panel width per layer; every width must
        // compute exactly the default-width bits at every pool width.
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_matrix(&mut rng, 311, 96);
        let b = random_matrix(&mut rng, 96, 40);
        let mut baseline = Matrix::zeros(311, 40);
        mm_into_with(&ThreadPool::new(1), &a, &b, &mut baseline, GemmOpts::default()).unwrap();
        for panel_rows in [1, 16, 32, 64, 128, 256, 1024] {
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                let opts = GemmOpts { panel_rows: Some(panel_rows), ..GemmOpts::default() };
                let mut c = Matrix::zeros(311, 40);
                mm_into_with(&pool, &a, &b, &mut c, opts).unwrap();
                assert_eq!(bits(&c), bits(&baseline), "panel={panel_rows} threads={threads}");
            }
        }
    }

    #[test]
    fn bmm_panel_width_is_bitwise_neutral() {
        let mut rng = StdRng::seed_from_u64(32);
        let a: Vec<Matrix> = (0..4).map(|_| random_matrix(&mut rng, 170, 48)).collect();
        let b: Vec<Matrix> = (0..4).map(|_| random_matrix(&mut rng, 48, 32)).collect();
        let a_refs: Vec<&Matrix> = a.iter().collect();
        let b_refs: Vec<&Matrix> = b.iter().collect();
        let mut baseline: Vec<Matrix> = a.iter().map(|_| Matrix::zeros(170, 32)).collect();
        bmm_into_with(&ThreadPool::new(1), &a_refs, &b_refs, &mut baseline, GemmOpts::default())
            .unwrap();
        for panel_rows in [32, 128] {
            let pool = ThreadPool::new(4);
            let opts = GemmOpts { panel_rows: Some(panel_rows), ..GemmOpts::default() };
            let mut out: Vec<Matrix> = a.iter().map(|_| Matrix::zeros(170, 32)).collect();
            bmm_into_with(&pool, &a_refs, &b_refs, &mut out, opts).unwrap();
            for (got, want) in out.iter().zip(&baseline) {
                assert_eq!(bits(got), bits(want), "panel={panel_rows}");
            }
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::eye(2);
        let mut c = Matrix::filled(2, 2, 10.0);
        mm_accumulate(&a, &b, &mut c).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 11.0, 11.0, 11.0]);
    }

    #[test]
    fn accumulate_rejects_bad_out_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(mm_accumulate(&a, &b, &mut c).is_err());
    }

    #[test]
    fn bmm_matches_sequential_mm() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 12, 8)).collect();
        let b: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 8, 6)).collect();
        let batched = bmm(&a, &b).unwrap();
        for i in 0..5 {
            assert_eq!(batched[i], mm(&a[i], &b[i]).unwrap());
        }
    }

    #[test]
    fn bmm_parallel_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<Matrix> = (0..6).map(|_| random_matrix(&mut rng, 150, 70)).collect();
        let b: Vec<Matrix> = (0..6).map(|_| random_matrix(&mut rng, 70, 40)).collect();
        let serial = bmm_on(&ThreadPool::new(1), &a, &b).unwrap();
        let parallel = bmm_on(&ThreadPool::new(4), &a, &b).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bmm_rejects_batch_mismatch() {
        let a = vec![Matrix::zeros(2, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::BatchMismatch { .. })));
    }

    #[test]
    fn bmm_rejects_ragged_shapes() {
        let a = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn bmm_empty_batch() {
        assert!(bmm(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn bmm_into_rejects_bad_out() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = vec![Matrix::zeros(2, 5)];
        assert!(bmm_into_on(ThreadPool::global(), &[&a], &[&b], &mut out).is_err());
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Kernels that must be bitwise interchangeable on this host.
    fn deterministic_kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar, Kernel::Portable];
        if torchsparse_runtime::cpu_features().avx2 {
            ks.push(Kernel::Avx2);
        }
        ks
    }

    #[test]
    fn packed_mm_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let pb = PackedB::pack(&Matrix::zeros(4, 5));
        let mut c = Matrix::zeros(2, 5);
        assert!(
            mm_into_packed_on(ThreadPool::global(), &a, &pb, &mut c, GemmOpts::default()).is_err()
        );
        let pb = PackedB::pack(&Matrix::zeros(3, 5));
        let mut bad_c = Matrix::zeros(2, 4);
        assert!(mm_into_packed_on(ThreadPool::global(), &a, &pb, &mut bad_c, GemmOpts::default())
            .is_err());
    }

    #[test]
    fn packed_mm_matches_dense_bitwise_across_pool_widths() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = random_matrix(&mut rng, 300, 96);
        let b = random_matrix(&mut rng, 96, 50);
        let packed = PackedB::pack(&b);
        let mut dense = Matrix::zeros(300, 50);
        mm_into_on(&ThreadPool::new(1), &a, &b, &mut dense).unwrap();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let mut c = Matrix::zeros(300, 50);
            mm_into_packed_on(&pool, &a, &packed, &mut c, GemmOpts::default()).unwrap();
            assert_eq!(bits(&c), bits(&dense), "threads={threads}");
        }
    }

    #[test]
    fn bmm_packed_matches_dense_bitwise() {
        let mut rng = StdRng::seed_from_u64(22);
        let a: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 130, 40)).collect();
        let b: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 40, 24)).collect();
        let packed: Vec<PackedB> = b.iter().map(PackedB::pack).collect();
        let a_refs: Vec<&Matrix> = a.iter().collect();
        let b_refs: Vec<&Matrix> = b.iter().collect();
        let pb_refs: Vec<&PackedB> = packed.iter().collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let mut dense: Vec<Matrix> = a.iter().map(|_| Matrix::zeros(130, 24)).collect();
            bmm_into_on(&pool, &a_refs, &b_refs, &mut dense).unwrap();
            let mut packed_out: Vec<Matrix> = a.iter().map(|_| Matrix::zeros(130, 24)).collect();
            bmm_into_packed_on(&pool, &a_refs, &pb_refs, &mut packed_out, GemmOpts::default())
                .unwrap();
            for (d, p) in dense.iter().zip(&packed_out) {
                assert_eq!(bits(p), bits(d), "threads={threads}");
            }
        }
    }

    /// Distance in representation order between two same-sign floats; used
    /// for the FMA tolerance check.
    fn ulp_distance(a: f32, b: f32) -> u64 {
        fn key(v: f32) -> i64 {
            let b = v.to_bits() as i32;
            (if b < 0 { i32::MIN.wrapping_sub(b) } else { b }) as i64
        }
        (key(a) - key(b)).unsigned_abs()
    }

    #[test]
    fn fma_mode_stays_within_4_ulp_of_reference() {
        if !torchsparse_runtime::cpu_features().fma {
            return; // nothing to exercise on this host
        }
        // Positive operands keep the partial sums monotone: the fused
        // multiply-add then differs from mul-then-add by at most half an
        // ulp of each product, which stays within a few ulps of the final
        // value. (Under catastrophic cancellation no fixed ULP bound can
        // hold for *any* reordering/contraction — that is exactly why FMA
        // is opt-in and excluded from the bitwise-determinism contract.)
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, n) in &[(17, 33, 9), (64, 128, 64), (5, 7, 31)] {
            let a = Matrix::from_fn(m, k, |_, _| rng.random_range(0.1f32..1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.random_range(0.1f32..1.0));
            let reference = mm_reference(&a, &b).unwrap();
            let opts = GemmOpts { kernel: Some(Kernel::Avx2), fma: true, panel_rows: None };
            assert_eq!(opts.resolve(), Kernel::Avx2Fma);
            let pool = ThreadPool::new(1);
            for operand_packed in [false, true] {
                let mut c = Matrix::zeros(m, n);
                if operand_packed {
                    let pb = PackedB::pack(&b);
                    mm_into_packed_on(&pool, &a, &pb, &mut c, opts).unwrap();
                } else {
                    mm_into_with(&pool, &a, &b, &mut c, opts).unwrap();
                }
                for (got, want) in c.as_slice().iter().zip(reference.as_slice()) {
                    assert!(
                        ulp_distance(*got, *want) <= 4,
                        "fma ({m},{k},{n}) packed={operand_packed}: {got} vs {want}"
                    );
                }
            }
        }
    }

    proptest! {
        /// Every deterministic kernel, dense or packed, is **bitwise** equal
        /// to the naive reference loop on arbitrary shapes — including
        /// ragged tails (`n % 16 != 0`, `m % 4 != 0`) and degenerate k.
        #[test]
        fn prop_all_kernels_bitwise_match_reference(
            m in 1usize..80, k in 1usize..48, n in 1usize..40, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let reference = mm_reference(&a, &b).unwrap();
            let packed = PackedB::pack(&b);
            let pool = ThreadPool::new(1);
            for kernel in deterministic_kernels() {
                let opts = GemmOpts::with_kernel(kernel);
                let mut dense = Matrix::zeros(m, n);
                mm_into_with(&pool, &a, &b, &mut dense, opts).unwrap();
                prop_assert!(bits(&dense) == bits(&reference), "dense {:?}", kernel);
                let mut pc = Matrix::zeros(m, n);
                mm_into_packed_on(&pool, &a, &packed, &mut pc, opts).unwrap();
                prop_assert!(bits(&pc) == bits(&reference), "packed {:?}", kernel);
            }
        }

        #[test]
        fn prop_mm_matches_reference(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }

        #[test]
        fn prop_mm_distributes_over_addition(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b1 = random_matrix(&mut rng, k, n);
            let b2 = random_matrix(&mut rng, k, n);
            let lhs = mm(&a, &(&b1 + &b2)).unwrap();
            let rhs = &mm(&a, &b1).unwrap() + &mm(&a, &b2).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
