//! Blocked, multi-threaded single-precision matrix multiplication.
//!
//! Sparse convolution lowers to many GEMMs of shape `|map| x Cin x Cout`
//! (Algorithm 2 of the paper). This module provides:
//!
//! - [`mm`]: `C = A * B` with cache-blocked loops, parallelized across row
//!   panels with `std::thread::scope` (no unsafe, no global thread pool).
//! - [`mm_accumulate`]: `C += A * B`, the scatter-accumulate-friendly variant.
//! - [`bmm`]: batched GEMM over equal-shaped matrices, mirroring cuBLAS
//!   `gemmStridedBatched` as used by the paper's grouped matmul (§4.2).
//!
//! All variants produce bitwise-identical results to the naive triple loop
//! (same accumulation order within each output element), which the tests
//! verify — determinism matters because the sparse engine's property tests
//! compare dataflows for exact equality.

use crate::{Matrix, TensorError};

/// Row-panel size for parallel partitioning.
const PANEL: usize = 64;
/// Cache block size along the reduction (k) dimension.
const KBLOCK: usize = 256;

/// Computes `A * B`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::{Matrix, gemm};
///
/// # fn main() -> Result<(), torchsparse_tensor::TensorError> {
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(3, 4, 2.0);
/// let c = gemm::mm(&a, &b)?;
/// assert_eq!(c[(1, 2)], 6.0);
/// # Ok(())
/// # }
/// ```
pub fn mm(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    mm_into(a, b, &mut c)?;
    Ok(c)
}

/// Computes `C += A * B` into an existing accumulator.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions disagree
/// or `C` has the wrong shape.
pub fn mm_accumulate(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), TensorError> {
    mm_into(a, b, c)
}

fn mm_into(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(TensorError::ShapeMismatch { op: "mm_out", lhs: c.shape(), rhs: (a.rows(), b.cols()) });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    // Partition C into row panels; each panel is an independent task.
    let panels: Vec<(usize, &mut [f32])> = c_data
        .chunks_mut(PANEL * n)
        .enumerate()
        .map(|(i, chunk)| (i * PANEL, chunk))
        .collect();

    let work = |row0: usize, c_panel: &mut [f32]| {
        let rows_here = c_panel.len() / n;
        for kb in (0..k).step_by(KBLOCK) {
            let k_end = (kb + KBLOCK).min(k);
            for r in 0..rows_here {
                let a_row = &a_data[(row0 + r) * k..(row0 + r) * k + k];
                let c_row = &mut c_panel[r * n..(r + 1) * n];
                for kk in kb..k_end {
                    let aval = a_row[kk];
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    };

    // Only spawn threads when the work is large enough to amortize them.
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    if flops < 2e6 || panels.len() == 1 {
        for (row0, panel) in panels {
            work(row0, panel);
        }
    } else {
        std::thread::scope(|s| {
            for (row0, panel) in panels {
                s.spawn(move || work(row0, panel));
            }
        });
    }
    Ok(())
}

/// Batched matrix multiplication: `C[i] = A[i] * B[i]` for every `i`.
///
/// All `A[i]` must share one shape and all `B[i]` another (the cuBLAS
/// strided-batched contract). The paper's grouped matmul pads per-weight
/// feature buffers to a common row count and then calls `bmm` (Figure 6c/d,
/// Algorithm 4).
///
/// # Errors
///
/// Returns [`TensorError::BatchMismatch`] if the batch lengths differ and
/// [`TensorError::ShapeMismatch`] if any matrix deviates from its batch shape
/// or the inner dimensions disagree.
pub fn bmm(a: &[Matrix], b: &[Matrix]) -> Result<Vec<Matrix>, TensorError> {
    if a.len() != b.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len() });
    }
    if a.is_empty() {
        return Ok(Vec::new());
    }
    let a_shape = a[0].shape();
    let b_shape = b[0].shape();
    for m in a {
        if m.shape() != a_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_lhs", lhs: a_shape, rhs: m.shape() });
        }
    }
    for m in b {
        if m.shape() != b_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_rhs", lhs: b_shape, rhs: m.shape() });
        }
    }
    a.iter().zip(b).map(|(x, w)| mm(x, w)).collect()
}

/// Naive reference GEMM (triple loop) used by tests as the ground truth.
pub fn mm_reference(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for kk in 0..a.cols() {
            let av = a[(i, kk)];
            for j in 0..b.cols() {
                c[(i, j)] += av * b[(kk, j)];
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 7, 7);
        assert_eq!(mm(&a, &Matrix::eye(7)).unwrap(), a);
        assert_eq!(mm(&Matrix::eye(7), &a).unwrap(), a);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(mm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(mm(&a, &b).unwrap().shape(), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        assert_eq!(mm(&a, &b).unwrap(), Matrix::zeros(2, 2));
    }

    #[test]
    fn matches_reference_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 33, 9), (130, 64, 48), (65, 300, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            let diff = fast.max_abs_diff(&slow).unwrap();
            assert!(diff < 1e-4, "({m},{k},{n}) diff {diff}");
        }
    }

    #[test]
    fn large_parallel_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 200, 128);
        let b = random_matrix(&mut rng, 128, 96);
        let fast = mm(&a, &b).unwrap();
        let slow = mm_reference(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::eye(2);
        let mut c = Matrix::filled(2, 2, 10.0);
        mm_accumulate(&a, &b, &mut c).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 11.0, 11.0, 11.0]);
    }

    #[test]
    fn accumulate_rejects_bad_out_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(mm_accumulate(&a, &b, &mut c).is_err());
    }

    #[test]
    fn bmm_matches_sequential_mm() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 12, 8)).collect();
        let b: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 8, 6)).collect();
        let batched = bmm(&a, &b).unwrap();
        for i in 0..5 {
            assert_eq!(batched[i], mm(&a[i], &b[i]).unwrap());
        }
    }

    #[test]
    fn bmm_rejects_batch_mismatch() {
        let a = vec![Matrix::zeros(2, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::BatchMismatch { .. })));
    }

    #[test]
    fn bmm_rejects_ragged_shapes() {
        let a = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn bmm_empty_batch() {
        assert!(bmm(&[], &[]).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn prop_mm_matches_reference(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }

        #[test]
        fn prop_mm_distributes_over_addition(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b1 = random_matrix(&mut rng, k, n);
            let b2 = random_matrix(&mut rng, k, n);
            let lhs = mm(&a, &(&b1 + &b2)).unwrap();
            let rhs = &mm(&a, &b1).unwrap() + &mm(&a, &b2).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
