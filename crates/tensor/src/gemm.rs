//! Blocked matrix multiplication dispatched onto the shared runtime pool.
//!
//! Sparse convolution lowers to many GEMMs of shape `|map| x Cin x Cout`
//! (Algorithm 2 of the paper). This module provides:
//!
//! - [`mm`] / [`mm_on`]: `C = A * B` with cache-blocked loops, partitioned
//!   into row panels executed on a persistent [`ThreadPool`] — no per-call
//!   thread spawning (the pre-runtime engine paid a `thread::scope` spawn
//!   per GEMM call).
//! - [`mm_accumulate`] / [`mm_accumulate_on`]: `C += A * B`, the
//!   scatter-accumulate-friendly variant.
//! - [`bmm`] / [`bmm_on`] / [`bmm_into_on`]: batched GEMM over equal-shaped
//!   matrices, mirroring cuBLAS `gemmStridedBatched` as used by the paper's
//!   grouped matmul (§4.2). The batched form flattens *every member's row
//!   panels into one task wave*, so group members of Algorithm 5 run
//!   concurrently instead of sequentially.
//!
//! All variants produce bitwise-identical results to the naive triple loop
//! (same accumulation order within each output element) for every thread
//! count — the panel partition is fixed by [`PANEL`], never by the lane
//! count, so scheduling cannot change the arithmetic. The tests and the
//! root crate's parallel-determinism property tests verify this.

use crate::{Matrix, TensorError};
use torchsparse_runtime::{Task, ThreadPool};

/// Row-panel size for parallel partitioning.
const PANEL: usize = 64;
/// Cache block size along the reduction (k) dimension.
const KBLOCK: usize = 256;
/// Below this flop count a GEMM is executed inline: queueing tasks costs
/// more than the arithmetic. Dispatching a task costs on the order of a
/// few microseconds; this bound keeps inline only the GEMMs whose whole
/// runtime is comparable to that.
const MIN_PARALLEL_FLOPS: f64 = 2.5e5;

/// Computes `A * B` on the global runtime pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::{Matrix, gemm};
///
/// # fn main() -> Result<(), torchsparse_tensor::TensorError> {
/// let a = Matrix::filled(2, 3, 1.0);
/// let b = Matrix::filled(3, 4, 2.0);
/// let c = gemm::mm(&a, &b)?;
/// assert_eq!(c[(1, 2)], 6.0);
/// # Ok(())
/// # }
/// ```
pub fn mm(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    mm_on(ThreadPool::global(), a, b)
}

/// Computes `A * B` on an explicit pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `A.cols() != B.rows()`.
pub fn mm_on(pool: &ThreadPool, a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    mm_into_on(pool, a, b, &mut c)?;
    Ok(c)
}

/// Computes `C += A * B` into an existing accumulator on the global pool.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions disagree
/// or `C` has the wrong shape.
pub fn mm_accumulate(a: &Matrix, b: &Matrix, c: &mut Matrix) -> Result<(), TensorError> {
    mm_into_on(ThreadPool::global(), a, b, c)
}

/// [`mm_accumulate`] on an explicit pool.
///
/// # Errors
///
/// As [`mm_accumulate`].
pub fn mm_accumulate_on(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> Result<(), TensorError> {
    mm_into_on(pool, a, b, c)
}

/// Computes one row panel of `C += A * B`.
///
/// `c_panel` is the panel's slice of C starting at row `row0`; the k-blocked
/// loop order is identical for every caller, which is what keeps results
/// bitwise reproducible across partitionings and thread counts.
fn compute_panel(
    a_data: &[f32],
    b_data: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    c_panel: &mut [f32],
) {
    let rows_here = c_panel.len() / n;
    for kb in (0..k).step_by(KBLOCK) {
        let k_end = (kb + KBLOCK).min(k);
        for r in 0..rows_here {
            let a_row = &a_data[(row0 + r) * k..(row0 + r) * k + k];
            let c_row = &mut c_panel[r * n..(r + 1) * n];
            for kk in kb..k_end {
                let aval = a_row[kk];
                if aval == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aval * bv;
                }
            }
        }
    }
}

fn check_shapes(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<(), TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(TensorError::ShapeMismatch {
            op: "mm_out",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    Ok(())
}

/// `C += A * B` with panels dispatched onto `pool`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inconsistent shapes.
pub fn mm_into_on(
    pool: &ThreadPool,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> Result<(), TensorError> {
    check_shapes(a, b, c)?;
    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    if pool.threads() <= 1 && !pool.is_recording() || flops < MIN_PARALLEL_FLOPS || m <= PANEL {
        for (i, panel) in c_data.chunks_mut(PANEL * n).enumerate() {
            compute_panel(a_data, b_data, k, n, i * PANEL, panel);
        }
        return Ok(());
    }
    let tasks: Vec<Task<'_>> = c_data
        .chunks_mut(PANEL * n)
        .enumerate()
        .map(|(i, panel)| {
            Box::new(move || compute_panel(a_data, b_data, k, n, i * PANEL, panel)) as Task<'_>
        })
        .collect();
    pool.run(tasks);
    Ok(())
}

/// Batched matrix multiplication: `C[i] = A[i] * B[i]` on the global pool.
///
/// All `A[i]` must share one shape and all `B[i]` another (the cuBLAS
/// strided-batched contract). The paper's grouped matmul pads per-weight
/// feature buffers to a common row count and then calls `bmm` (Figure 6c/d,
/// Algorithm 4).
///
/// # Errors
///
/// Returns [`TensorError::BatchMismatch`] if the batch lengths differ and
/// [`TensorError::ShapeMismatch`] if any matrix deviates from its batch shape
/// or the inner dimensions disagree.
pub fn bmm(a: &[Matrix], b: &[Matrix]) -> Result<Vec<Matrix>, TensorError> {
    bmm_on(ThreadPool::global(), a, b)
}

/// [`bmm`] on an explicit pool.
///
/// # Errors
///
/// As [`bmm`].
pub fn bmm_on(pool: &ThreadPool, a: &[Matrix], b: &[Matrix]) -> Result<Vec<Matrix>, TensorError> {
    if a.len() != b.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len() });
    }
    if a.is_empty() {
        return Ok(Vec::new());
    }
    let mut out: Vec<Matrix> = a.iter().map(|ai| Matrix::zeros(ai.rows(), b[0].cols())).collect();
    let a_refs: Vec<&Matrix> = a.iter().collect();
    let b_refs: Vec<&Matrix> = b.iter().collect();
    bmm_into_on(pool, &a_refs, &b_refs, &mut out)?;
    Ok(out)
}

/// Batched GEMM into caller-provided outputs, with the row panels of *all*
/// batch members flattened into a single task wave.
///
/// This is the runtime's grouped-matmul primitive: a bmm group from
/// Algorithm 5 hands its per-offset gather buffers (typically recycled
/// workspace matrices) and receives every member's partial sums computed
/// concurrently — one wave, no barrier between members.
///
/// # Errors
///
/// Returns [`TensorError::BatchMismatch`] if the slice lengths differ and
/// [`TensorError::ShapeMismatch`] if any matrix deviates from its batch
/// shape, an output has the wrong shape, or inner dimensions disagree.
pub fn bmm_into_on(
    pool: &ThreadPool,
    a: &[&Matrix],
    b: &[&Matrix],
    out: &mut [Matrix],
) -> Result<(), TensorError> {
    if a.len() != b.len() || a.len() != out.len() {
        return Err(TensorError::BatchMismatch { lhs: a.len(), rhs: b.len().min(out.len()) });
    }
    if a.is_empty() {
        return Ok(());
    }
    let a_shape = a[0].shape();
    let b_shape = b[0].shape();
    for m in a {
        if m.shape() != a_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_lhs", lhs: a_shape, rhs: m.shape() });
        }
    }
    for m in b {
        if m.shape() != b_shape {
            return Err(TensorError::ShapeMismatch { op: "bmm_rhs", lhs: b_shape, rhs: m.shape() });
        }
    }
    for (ai, ci) in a.iter().zip(out.iter()) {
        check_shapes(ai, b[0], ci)?;
    }
    let (m, k) = a_shape;
    let n = b_shape.1;
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let batch_flops = 2.0 * (a.len() * m) as f64 * n as f64 * k as f64;
    if pool.threads() <= 1 && !pool.is_recording() || batch_flops < MIN_PARALLEL_FLOPS {
        for ((ai, bi), ci) in a.iter().zip(b).zip(out.iter_mut()) {
            for (p, panel) in ci.as_mut_slice().chunks_mut(PANEL * n).enumerate() {
                compute_panel(ai.as_slice(), bi.as_slice(), k, n, p * PANEL, panel);
            }
        }
        return Ok(());
    }
    let mut tasks: Vec<Task<'_>> = Vec::new();
    for ((ai, bi), ci) in a.iter().zip(b).zip(out.iter_mut()) {
        let a_data = ai.as_slice();
        let b_data = bi.as_slice();
        for (p, panel) in ci.as_mut_slice().chunks_mut(PANEL * n).enumerate() {
            tasks.push(Box::new(move || compute_panel(a_data, b_data, k, n, p * PANEL, panel)));
        }
    }
    pool.run(tasks);
    Ok(())
}

/// Naive reference GEMM (triple loop) used by tests as the ground truth.
pub fn mm_reference(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch { op: "mm", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for kk in 0..a.cols() {
            let av = a[(i, kk)];
            for j in 0..b.cols() {
                c[(i, j)] += av * b[(kk, j)];
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 7, 7);
        assert_eq!(mm(&a, &Matrix::eye(7)).unwrap(), a);
        assert_eq!(mm(&Matrix::eye(7), &a).unwrap(), a);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(mm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(mm(&a, &b).unwrap().shape(), (0, 2));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        assert_eq!(mm(&a, &b).unwrap(), Matrix::zeros(2, 2));
    }

    #[test]
    fn matches_reference_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 33, 9), (130, 64, 48), (65, 300, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            let diff = fast.max_abs_diff(&slow).unwrap();
            assert!(diff < 1e-4, "({m},{k},{n}) diff {diff}");
        }
    }

    #[test]
    fn large_parallel_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 200, 128);
        let b = random_matrix(&mut rng, 128, 96);
        let fast = mm(&a, &b).unwrap();
        let slow = mm_reference(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn bitwise_identical_across_pool_widths() {
        // The partition is fixed by PANEL, not by lane count, so every pool
        // width computes exactly the same bits.
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 300, 200);
        let b = random_matrix(&mut rng, 200, 64);
        let serial = mm_on(&ThreadPool::new(1), &a, &b).unwrap();
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = mm_on(&pool, &a, &b).unwrap();
            assert_eq!(
                serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::eye(2);
        let mut c = Matrix::filled(2, 2, 10.0);
        mm_accumulate(&a, &b, &mut c).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 11.0, 11.0, 11.0]);
    }

    #[test]
    fn accumulate_rejects_bad_out_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(mm_accumulate(&a, &b, &mut c).is_err());
    }

    #[test]
    fn bmm_matches_sequential_mm() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 12, 8)).collect();
        let b: Vec<Matrix> = (0..5).map(|_| random_matrix(&mut rng, 8, 6)).collect();
        let batched = bmm(&a, &b).unwrap();
        for i in 0..5 {
            assert_eq!(batched[i], mm(&a[i], &b[i]).unwrap());
        }
    }

    #[test]
    fn bmm_parallel_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<Matrix> = (0..6).map(|_| random_matrix(&mut rng, 150, 70)).collect();
        let b: Vec<Matrix> = (0..6).map(|_| random_matrix(&mut rng, 70, 40)).collect();
        let serial = bmm_on(&ThreadPool::new(1), &a, &b).unwrap();
        let parallel = bmm_on(&ThreadPool::new(4), &a, &b).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bmm_rejects_batch_mismatch() {
        let a = vec![Matrix::zeros(2, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::BatchMismatch { .. })));
    }

    #[test]
    fn bmm_rejects_ragged_shapes() {
        let a = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)];
        let b = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)];
        assert!(matches!(bmm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn bmm_empty_batch() {
        assert!(bmm(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn bmm_into_rejects_bad_out() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = vec![Matrix::zeros(2, 5)];
        assert!(bmm_into_on(ThreadPool::global(), &[&a], &[&b], &mut out).is_err());
    }

    proptest! {
        #[test]
        fn prop_mm_matches_reference(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = mm(&a, &b).unwrap();
            let slow = mm_reference(&a, &b).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }

        #[test]
        fn prop_mm_distributes_over_addition(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b1 = random_matrix(&mut rng, k, n);
            let b2 = random_matrix(&mut rng, k, n);
            let lhs = mm(&a, &(&b1 + &b2)).unwrap();
            let rhs = &mm(&a, &b1).unwrap() + &mm(&a, &b2).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
