//! Order-independent, error-free floating-point accumulation.
//!
//! The engine's scatter phase reduces many partial sums into each output
//! element. Plain FP32 `+=` makes the result depend on the order the
//! addends arrive, which historically pinned the scatter to one fixed
//! serial order for bitwise determinism — the Amdahl ceiling on the
//! parallel fraction. This module removes the ordering constraint at the
//! arithmetic level:
//!
//! - [`two_sum`]: Knuth's error-free transformation — the classical
//!   building block of compensated (Kahan–Babuška–Neumaier) and
//!   expansion-based (Shewchuk) summation. Exposed as a primitive and used
//!   by [`NeumaierSum`].
//! - [`NeumaierSum`]: the Neumaier cascade. Far more accurate than naive
//!   summation, but **not** order-independent — reordering the addends can
//!   still change the final bits. Provided for comparison and as the
//!   lightweight option when reproducibility across orders is not needed.
//! - [`ExactAccumulator`]: a fixed-point *superaccumulator*. Every finite
//!   `f32` is an integer multiple of 2⁻¹⁴⁹ with magnitude below 2²⁷⁷, so
//!   the sum of any number of them is held **exactly** in a wide
//!   two's-complement integer. Integer addition is associative and
//!   commutative, so the state after adding a multiset of values is
//!   identical for *every* summation order and *every* split/merge
//!   partitioning — and the single final conversion back to `f32`
//!   ([`ExactAccumulator::round`]) is correctly rounded
//!   (round-to-nearest, ties-to-even). This is what makes the parallel
//!   scatter deterministic at any thread count.
//!
//! # Precision paths
//!
//! The engine stores features in FP32, FP16, or INT8, but *accumulates* in
//! FP32 in every mode (tensor-core semantics; §4.3.1 of the paper):
//!
//! - **FP32**: partial sums are arbitrary finite `f32`s; the
//!   superaccumulator sums them exactly.
//! - **FP16**: partial sums are f16-rounded before accumulation (the
//!   16-bit psum store). Every binary16 value is exactly representable in
//!   `f32`, so the same exact f32 sum applies unchanged — the 16-bit
//!   rounding of the *addends* is preserved bit for bit and only the
//!   *reduction* becomes order-free.
//! - **INT8**: quantized values are dequantized to exact small `f32`
//!   multiples of the scale; their products and sums are ordinary `f32`
//!   values and take the same path. (A dedicated integer accumulator is
//!   unnecessary: the superaccumulator *is* an integer accumulator, in
//!   units of 2⁻¹⁴⁹.)
//!
//! # Special values
//!
//! Non-finite inputs are tracked by flags, mirroring what an IEEE-754
//! addition chain would produce regardless of order: any NaN — or both
//! +∞ and −∞ — yields the canonical quiet NaN; otherwise a seen infinity
//! wins. A zero integer sum rounds to −0.0 only when every addend was
//! −0.0 (the IEEE round-to-nearest rule for sums of zeros); any other
//! cancellation to zero yields +0.0. Overflow of the rounded magnitude
//! past the largest finite `f32` returns ±∞, exactly as a correctly
//! rounded conversion must.
//!
//! # Capacity
//!
//! The accumulator is 384 bits wide against a maximum addend magnitude
//! below 2²⁷⁷, leaving 2¹⁰⁶ addends of headroom before wraparound could
//! occur — unreachable in practice (the engine sums at most a few hundred
//! values per element; even a u64-indexed stream cannot exhaust it).

/// Knuth's two-sum: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` **exactly** (for finite inputs whose sum does not
/// overflow). The error term `e` is what compensated and expansion-based
/// summation algorithms carry forward.
#[inline]
#[must_use]
pub fn two_sum(a: f32, b: f32) -> (f32, f32) {
    let s = a + b;
    let a_virtual = s - b;
    let b_virtual = s - a_virtual;
    let a_roundoff = a - a_virtual;
    let b_roundoff = b - b_virtual;
    (s, a_roundoff + b_roundoff)
}

/// Kahan–Babuška–Neumaier compensated summation.
///
/// Tracks a running sum plus a separate compensation term fed by
/// [`two_sum`]-style error recovery. Much tighter than naive summation
/// (error independent of the addend count for well-scaled data), but the
/// result still depends on the order of [`add`](NeumaierSum::add) calls —
/// use [`ExactAccumulator`] where bitwise order-independence is required.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f32,
    compensation: f32,
}

impl NeumaierSum {
    /// A fresh, empty sum.
    #[must_use]
    pub const fn new() -> NeumaierSum {
        NeumaierSum { sum: 0.0, compensation: 0.0 }
    }

    /// Adds one value.
    #[inline]
    pub fn add(&mut self, v: f32) {
        let (s, e) = two_sum(self.sum, v);
        self.sum = s;
        self.compensation += e;
    }

    /// The compensated total.
    #[must_use]
    pub fn total(&self) -> f32 {
        self.sum + self.compensation
    }
}

/// Number of 64-bit limbs in the superaccumulator (384 bits).
const LIMBS: usize = 6;

/// Exponent-field bias offset: a normal `f32` with biased exponent `e`
/// contributes its 24-bit significand shifted left by `e - 1` in units of
/// 2⁻¹⁴⁹; subnormals (`e == 0`) contribute their raw 23-bit mantissa with
/// shift 0.
const UNIT_EXP: i32 = -149;

/// A fixed-point superaccumulator: the exact sum of any multiset of `f32`
/// values, independent of addition order and of how the work is split
/// across [`merge`](ExactAccumulator::merge)d partial accumulators.
///
/// State is a 384-bit two's-complement integer counting units of 2⁻¹⁴⁹
/// (the smallest positive subnormal), plus flags for non-finite inputs and
/// the signed-zero rule. [`round`](ExactAccumulator::round) converts back
/// to the nearest `f32` (ties to even) in one correctly rounded step.
///
/// ```
/// use torchsparse_tensor::accum::ExactAccumulator;
///
/// let vals = [1.0e30_f32, 1.0, -1.0e30, 2.5e-12];
/// let mut fwd = ExactAccumulator::new();
/// let mut rev = ExactAccumulator::new();
/// for v in vals {
///     fwd.add(v);
/// }
/// for v in vals.iter().rev() {
///     rev.add(*v);
/// }
/// // Naive f32 summation loses the small addends entirely; the exact
/// // accumulator recovers the correctly rounded sum in every order.
/// assert_eq!(fwd.round().to_bits(), rev.round().to_bits());
/// assert_eq!(fwd.round(), 1.0 + 2.5e-12_f32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactAccumulator {
    /// Little-endian two's-complement integer value, in units of 2⁻¹⁴⁹.
    limbs: [u64; LIMBS],
    /// Any NaN addend was seen.
    saw_nan: bool,
    /// A +∞ addend was seen.
    saw_pos_inf: bool,
    /// A −∞ addend was seen.
    saw_neg_inf: bool,
    /// At least one addend was seen (empty sums round to +0.0).
    saw_any: bool,
    /// An addend other than −0.0 was seen (clears the all-negative-zeros
    /// rule that makes a zero sum round to −0.0).
    saw_non_neg_zero: bool,
}

impl Default for ExactAccumulator {
    fn default() -> ExactAccumulator {
        ExactAccumulator::new()
    }
}

impl ExactAccumulator {
    /// A fresh, empty accumulator (rounds to +0.0).
    #[must_use]
    pub const fn new() -> ExactAccumulator {
        ExactAccumulator {
            limbs: [0; LIMBS],
            saw_nan: false,
            saw_pos_inf: false,
            saw_neg_inf: false,
            saw_any: false,
            saw_non_neg_zero: false,
        }
    }

    /// Resets to the empty state (cheaper than reallocating when a scratch
    /// accumulator is reused across output elements).
    pub fn reset(&mut self) {
        *self = ExactAccumulator::new();
    }

    /// Adds one `f32` value exactly.
    #[inline]
    pub fn add(&mut self, v: f32) {
        self.saw_any = true;
        let bits = v.to_bits();
        let negative = bits >> 31 == 1;
        let exp = (bits >> 23) & 0xFF;
        let mantissa = bits & 0x007F_FFFF;
        if exp == 0xFF {
            self.saw_non_neg_zero = true;
            if mantissa != 0 {
                self.saw_nan = true;
            } else if negative {
                self.saw_neg_inf = true;
            } else {
                self.saw_pos_inf = true;
            }
            return;
        }
        if exp == 0 && mantissa == 0 {
            // ±0.0 contributes nothing to the integer value; only the
            // signed-zero rule observes it.
            if !negative {
                self.saw_non_neg_zero = true;
            }
            return;
        }
        self.saw_non_neg_zero = true;
        // Finite nonzero: value = ±m * 2^(shift) units, m < 2^24.
        let (m, shift) = if exp == 0 {
            (u64::from(mantissa), 0u32)
        } else {
            (u64::from(mantissa | 0x0080_0000), exp - 1)
        };
        if negative {
            self.sub_magnitude(m, shift);
        } else {
            self.add_magnitude(m, shift);
        }
    }

    /// Folds another accumulator into this one. The combined state is
    /// bitwise identical to having added both accumulators' inputs to a
    /// single accumulator, in any order — the chunk-split invariance the
    /// parallel scatter relies on.
    pub fn merge(&mut self, other: &ExactAccumulator) {
        let mut carry = false;
        for (dst, &src) in self.limbs.iter_mut().zip(&other.limbs) {
            let (s, c1) = dst.overflowing_add(src);
            let (s, c2) = s.overflowing_add(u64::from(carry));
            *dst = s;
            carry = c1 || c2;
        }
        self.saw_nan |= other.saw_nan;
        self.saw_pos_inf |= other.saw_pos_inf;
        self.saw_neg_inf |= other.saw_neg_inf;
        self.saw_any |= other.saw_any;
        self.saw_non_neg_zero |= other.saw_non_neg_zero;
    }

    /// Adds `m << shift` to the integer value.
    #[inline]
    fn add_magnitude(&mut self, m: u64, shift: u32) {
        let limb = (shift / 64) as usize;
        let bit = shift % 64;
        let wide = u128::from(m) << bit;
        let (lo, hi) = (wide as u64, (wide >> 64) as u64);
        let (s, mut carry) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = s;
        let mut extra = hi;
        let mut i = limb + 1;
        while i < LIMBS && (extra != 0 || carry) {
            let (s, c1) = self.limbs[i].overflowing_add(extra);
            let (s, c2) = s.overflowing_add(u64::from(carry));
            self.limbs[i] = s;
            carry = c1 || c2;
            extra = 0;
            i += 1;
        }
        // A carry out of the top limb wraps mod 2^384 — exactly
        // two's-complement addition against a negative running sum.
    }

    /// Subtracts `m << shift` from the integer value.
    #[inline]
    fn sub_magnitude(&mut self, m: u64, shift: u32) {
        let limb = (shift / 64) as usize;
        let bit = shift % 64;
        let wide = u128::from(m) << bit;
        let (lo, hi) = (wide as u64, (wide >> 64) as u64);
        let (d, mut borrow) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = d;
        let mut extra = hi;
        let mut i = limb + 1;
        while i < LIMBS && (extra != 0 || borrow) {
            let (d, b1) = self.limbs[i].overflowing_sub(extra);
            let (d, b2) = d.overflowing_sub(u64::from(borrow));
            self.limbs[i] = d;
            borrow = b1 || b2;
            extra = 0;
            i += 1;
        }
    }

    /// Converts the exact sum to the nearest `f32` (round-to-nearest,
    /// ties-to-even) in one correctly rounded step.
    #[must_use]
    pub fn round(&self) -> f32 {
        if self.saw_nan || (self.saw_pos_inf && self.saw_neg_inf) {
            return f32::NAN;
        }
        if self.saw_pos_inf {
            return f32::INFINITY;
        }
        if self.saw_neg_inf {
            return f32::NEG_INFINITY;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            negate(&mut mag);
        }
        let Some(high_bit) = highest_set_bit(&mag) else {
            // Exact zero: −0.0 only if every addend was −0.0.
            return if self.saw_any && !self.saw_non_neg_zero { -0.0 } else { 0.0 };
        };
        let (mut mantissa, mut shift) = if high_bit <= 23 {
            // Fits in 24 bits: exact, no rounding (subnormal or the lowest
            // normal binade).
            (mag[0] as u32, 0u32)
        } else {
            let sh = high_bit - 23;
            let mantissa = extract_24_bits(&mag, sh);
            let round_up = {
                let guard = bit_at(&mag, sh - 1);
                guard && (mantissa & 1 == 1 || any_bit_below(&mag, sh - 1))
            };
            (mantissa + u32::from(round_up), sh)
        };
        if mantissa == 1 << 24 {
            // Rounding carried into the next binade.
            mantissa = 1 << 23;
            shift += 1;
        }
        // With the implicit bit folded in, the f32 bit pattern of
        // mantissa * 2^(shift + UNIT_EXP) is simply (shift << 23) + mantissa
        // — valid across the subnormal/normal boundary. Values past the
        // largest finite pattern overflow to infinity, as correct rounding
        // requires.
        let _ = UNIT_EXP;
        let pattern = (u64::from(shift) << 23) + u64::from(mantissa);
        if pattern >= 0x7F80_0000 {
            return if negative { f32::NEG_INFINITY } else { f32::INFINITY };
        }
        let pattern = pattern as u32 | if negative { 0x8000_0000 } else { 0 };
        f32::from_bits(pattern)
    }
}

/// Two's-complement negation of a multi-limb integer.
fn negate(limbs: &mut [u64; LIMBS]) {
    let mut carry = true;
    for limb in limbs.iter_mut() {
        let (v, c) = (!*limb).overflowing_add(u64::from(carry));
        *limb = v;
        carry = c;
    }
}

/// Index of the highest set bit, or `None` for zero.
fn highest_set_bit(limbs: &[u64; LIMBS]) -> Option<u32> {
    for (i, &limb) in limbs.iter().enumerate().rev() {
        if limb != 0 {
            return Some(i as u32 * 64 + 63 - limb.leading_zeros());
        }
    }
    None
}

/// The 24 bits starting at bit `sh` (the rounded-down significand). The
/// caller guarantees `sh + 23` is the highest set bit.
fn extract_24_bits(limbs: &[u64; LIMBS], sh: u32) -> u32 {
    let limb = (sh / 64) as usize;
    let bit = sh % 64;
    let mut v = limbs[limb] >> bit;
    if bit > 40 && limb + 1 < LIMBS {
        v |= limbs[limb + 1] << (64 - bit);
    }
    (v & 0x00FF_FFFF) as u32
}

/// Whether bit `pos` is set.
fn bit_at(limbs: &[u64; LIMBS], pos: u32) -> bool {
    limbs[(pos / 64) as usize] >> (pos % 64) & 1 == 1
}

/// Whether any bit strictly below `pos` is set.
fn any_bit_below(limbs: &[u64; LIMBS], pos: u32) -> bool {
    let limb = (pos / 64) as usize;
    let bit = pos % 64;
    if bit > 0 && limbs[limb] & ((1u64 << bit) - 1) != 0 {
        return true;
    }
    limbs[..limb].iter().any(|&l| l != 0)
}

/// Exact, order-independent sum of a slice (convenience wrapper).
#[must_use]
pub fn exact_sum(values: &[f32]) -> f32 {
    let mut acc = ExactAccumulator::new();
    for &v in values {
        acc.add(v);
    }
    acc.round()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: f32) -> u32 {
        v.to_bits()
    }

    #[test]
    fn two_sum_recovers_roundoff() {
        let (s, e) = two_sum(1.0e8, 1.0);
        assert_eq!(s, 1.0e8 + 1.0);
        // The exact sum is s + e.
        assert_eq!(f64::from(s) + f64::from(e), 1.0e8f64 + 1.0);
    }

    #[test]
    fn neumaier_beats_naive() {
        let vals = [1.0e8_f32, 1.0, -1.0e8];
        let naive: f32 = vals.iter().sum();
        let mut n = NeumaierSum::new();
        for v in vals {
            n.add(v);
        }
        assert_eq!(n.total(), 1.0);
        assert_ne!(naive, 1.0, "naive summation must actually lose the small addend");
    }

    #[test]
    fn exact_simple_sums() {
        assert_eq!(exact_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(exact_sum(&[]), 0.0);
        assert_eq!(exact_sum(&[0.5; 7]), 3.5);
        assert_eq!(exact_sum(&[-1.5, 1.0]), -0.5);
    }

    #[test]
    fn exact_catastrophic_cancellation() {
        // Naive summation returns 0.0 here; the exact sum is 1.0.
        assert_eq!(exact_sum(&[1.0e30, 1.0, -1.0e30]), 1.0);
        // Cancellation down to the smallest subnormal.
        let tiny = f32::from_bits(1); // 2^-149
        assert_eq!(bits(exact_sum(&[1.0, tiny, -1.0])), bits(tiny));
    }

    #[test]
    fn exact_subnormal_arithmetic() {
        let tiny = f32::from_bits(1);
        assert_eq!(bits(exact_sum(&[tiny, tiny, tiny])), bits(f32::from_bits(3)));
        assert_eq!(bits(exact_sum(&[tiny, -tiny])), bits(0.0));
        // Subnormals summing up into the normal range.
        let sub = f32::from_bits(0x007F_FFFF); // largest subnormal
        let sum2 = exact_sum(&[sub, sub]);
        assert_eq!(f64::from(sum2), 2.0 * f64::from(sub));
    }

    #[test]
    fn exact_ties_round_to_even() {
        // 2^24 + 1 is exactly halfway between 2^24 and 2^24 + 2: RN-even
        // keeps 2^24 (even mantissa).
        let big = (1u32 << 24) as f32;
        assert_eq!(exact_sum(&[big, 1.0]), big);
        // 2^24 + 2 + 1 rounds up to 2^24 + 4 (ties to even again).
        let odd = big + 2.0;
        assert_eq!(exact_sum(&[odd, 1.0]), big + 4.0);
        // A sticky bit below the guard breaks the tie upward.
        assert_eq!(exact_sum(&[big, 1.0, f32::from_bits(1)]), big + 2.0);
    }

    #[test]
    fn exact_overflow_to_infinity() {
        assert_eq!(exact_sum(&[f32::MAX, f32::MAX]), f32::INFINITY);
        assert_eq!(exact_sum(&[f32::MIN, f32::MIN]), f32::NEG_INFINITY);
        // MAX + MAX - MAX is exactly MAX again: no spurious overflow.
        assert_eq!(exact_sum(&[f32::MAX, f32::MAX, -f32::MAX]), f32::MAX);
        // Just past the rounding boundary overflows; exactly at MAX stays.
        let half_ulp = 2.0f32.powi(103); // 0.5 * ulp(MAX) = 2^103
        assert_eq!(exact_sum(&[f32::MAX, half_ulp]), f32::INFINITY, "tie rounds to even (inf)");
        assert_eq!(exact_sum(&[f32::MAX, half_ulp * 0.5]), f32::MAX);
    }

    #[test]
    fn exact_special_values() {
        assert!(exact_sum(&[f32::NAN, 1.0]).is_nan());
        assert!(exact_sum(&[f32::INFINITY, f32::NEG_INFINITY]).is_nan());
        assert_eq!(exact_sum(&[f32::INFINITY, -1.0e38]), f32::INFINITY);
        assert_eq!(exact_sum(&[f32::NEG_INFINITY, f32::MAX]), f32::NEG_INFINITY);
    }

    #[test]
    fn exact_signed_zero_rules() {
        assert_eq!(bits(exact_sum(&[-0.0, -0.0])), bits(-0.0));
        assert_eq!(bits(exact_sum(&[-0.0])), bits(-0.0));
        assert_eq!(bits(exact_sum(&[-0.0, 0.0])), bits(0.0));
        assert_eq!(bits(exact_sum(&[0.0, -0.0])), bits(0.0));
        assert_eq!(bits(exact_sum(&[1.0, -1.0])), bits(0.0), "cancellation yields +0");
        assert_eq!(bits(exact_sum(&[-0.0, 1.0, -1.0])), bits(0.0));
    }

    #[test]
    fn exact_order_independent_with_specials() {
        let vals = [f32::INFINITY, 1.0, -0.0, f32::MAX, -f32::MAX];
        let fwd = exact_sum(&vals);
        let rev: Vec<f32> = vals.iter().rev().copied().collect();
        assert_eq!(bits(fwd), bits(exact_sum(&rev)));
    }

    #[test]
    fn merge_matches_single_pass() {
        let vals = [3.5e12_f32, -1.0, 7.25e-30, 1.0e38, -9.9e37, 0.125];
        let mut whole = ExactAccumulator::new();
        for v in vals {
            whole.add(v);
        }
        for split in 0..=vals.len() {
            let mut a = ExactAccumulator::new();
            let mut b = ExactAccumulator::new();
            for &v in &vals[..split] {
                a.add(v);
            }
            for &v in &vals[split..] {
                b.add(v);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {split}");
            assert_eq!(bits(a.round()), bits(whole.round()));
        }
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut acc = ExactAccumulator::new();
        acc.add(f32::NAN);
        acc.add(123.0);
        acc.reset();
        assert_eq!(acc, ExactAccumulator::new());
        assert_eq!(bits(acc.round()), bits(0.0));
    }

    #[test]
    fn round_matches_f64_when_f64_is_exact() {
        // Sums whose exact value fits f64 round identically to the f64
        // route (f64 -> f32 of an exactly represented value is correctly
        // rounded by definition).
        let cases: &[&[f32]] = &[
            &[1.0e8, 1.0, 1.0, 1.0],
            &[0.1, 0.2, 0.3],
            &[1.5e-45, 1.0e-40, -2.0e-41],
            &[123456.78, -0.0012345, 9.0e-8],
        ];
        for vals in cases {
            let exact: f64 = vals.iter().map(|&v| f64::from(v)).sum();
            assert_eq!(bits(exact_sum(vals)), bits(exact as f32), "{vals:?}");
        }
    }
}
