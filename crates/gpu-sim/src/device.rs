/// Characteristics of a simulated NVIDIA GPU.
///
/// The published numbers (peak TFLOP/s, DRAM bandwidth, L2 capacity) come
/// straight from vendor datasheets for the three devices the paper evaluates
/// on. The remaining fields are *model parameters* calibrated once so the
/// simulator reproduces the paper's measured utilization anchors (e.g. the
/// separate-matmul baseline running at ~30% utilization on RTX 2080 Ti,
/// §3 Principle I); they are never tuned per experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"RTX 3090"`.
    pub name: String,
    /// Peak FP32 GEMM throughput achievable by a saturating kernel, TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP16 GEMM throughput, TFLOP/s. Devices without FP16 tensor cores
    /// (GTX 1080 Ti) get the FP32 figure — the paper leans on this to show
    /// its gains are not tensor-core artifacts (§5.2).
    pub fp16_tflops: f64,
    /// DRAM bandwidth, GB/s.
    pub dram_gbs: f64,
    /// Memory-transaction pipeline bandwidth as a multiple of DRAM bandwidth.
    ///
    /// Calibrated so that scalar FP16 scatter/gather lands at the paper's
    /// observed ~1.3x (not the naive 2x) over FP32 while vectorized FP16
    /// reaches ~1.9x (§4.3.1, Table 3 rows 2-3).
    pub xact_bandwidth_ratio: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity (ways per set); lines are 128 bytes.
    pub l2_ways: usize,
    /// Effective per-kernel launch overhead in a busy stream (launches
    /// pipeline asynchronously, so this is the inter-kernel gap, not the
    /// full CPU-side launch cost), microseconds.
    pub launch_overhead_us: f64,
    /// Maximum fraction of peak a GEMM ever reaches on sparse-conv shapes.
    pub gemm_util_max: f64,
    /// GEMM rows at which utilization reaches half of `gemm_util_max`
    /// (the knee of the Figure 7 curve).
    pub gemm_rows_half: f64,
}

impl DeviceProfile {
    /// NVIDIA GTX 1080 Ti (Pascal): no FP16 tensor cores.
    pub fn gtx_1080ti() -> DeviceProfile {
        DeviceProfile {
            name: "GTX 1080Ti".to_owned(),
            fp32_tflops: 11.3,
            fp16_tflops: 11.3, // Pascal FP16 offers no GEMM speedup
            dram_gbs: 484.0,
            xact_bandwidth_ratio: 1.35,
            l2_bytes: 2_752 * 1024,
            l2_ways: 16,
            launch_overhead_us: 2.0,
            gemm_util_max: 0.85,
            gemm_rows_half: 6_000.0,
        }
    }

    /// NVIDIA RTX 2080 Ti (Turing): FP16 tensor cores, 5.5 MB L2.
    pub fn rtx_2080ti() -> DeviceProfile {
        DeviceProfile {
            name: "RTX 2080Ti".to_owned(),
            fp32_tflops: 13.4,
            // Effective FP16 GEMM peak for the memory-adjacent shapes of
            // sparse convolution; calibrated against the paper's anchor of
            // 8.1 TFLOP/s at ~30% utilization (§3).
            fp16_tflops: 26.9,
            dram_gbs: 616.0,
            xact_bandwidth_ratio: 1.35,
            l2_bytes: 5_632 * 1024,
            l2_ways: 16,
            launch_overhead_us: 1.5,
            gemm_util_max: 0.85,
            gemm_rows_half: 8_500.0,
        }
    }

    /// NVIDIA RTX 3090 (Ampere): highest bandwidth and FLOPs of the trio.
    pub fn rtx_3090() -> DeviceProfile {
        DeviceProfile {
            name: "RTX 3090".to_owned(),
            fp32_tflops: 35.6,
            fp16_tflops: 71.0,
            dram_gbs: 936.0,
            xact_bandwidth_ratio: 1.35,
            l2_bytes: 6_144 * 1024,
            l2_ways: 16,
            launch_overhead_us: 1.2,
            gemm_util_max: 0.85,
            gemm_rows_half: 15_000.0,
        }
    }

    /// All three evaluation devices, in the paper's order.
    pub fn evaluation_devices() -> Vec<DeviceProfile> {
        vec![Self::gtx_1080ti(), Self::rtx_2080ti(), Self::rtx_3090()]
    }

    /// The device's architecture family — the granularity at which tuned
    /// execution policies transfer. Two boards of one family share cache
    /// geometry and tensor-core behavior closely enough that a policy
    /// tuned on one is the right warm start on the other, while its exact
    /// clocks still get re-measured. Derived from the marketing name
    /// (`GTX 10xx` → `pascal`, `RTX 20xx` → `turing`, `RTX 30xx` →
    /// `ampere`); unrecognized devices fall back to their sanitized
    /// lowercase name, which keeps them split per board.
    pub fn family(&self) -> String {
        let lower = self.name.to_ascii_lowercase();
        if lower.starts_with("gtx 10") {
            return "pascal".to_owned();
        }
        if lower.starts_with("rtx 20") {
            return "turing".to_owned();
        }
        if lower.starts_with("rtx 30") {
            return "ampere".to_owned();
        }
        lower.chars().map(|c| if c.is_whitespace() { '-' } else { c }).collect()
    }

    /// Whether FP16 GEMM is faster than FP32 on this device.
    pub fn has_fp16_gemm(&self) -> bool {
        self.fp16_tflops > self.fp32_tflops
    }

    /// Number of 128-byte L2 cache lines.
    pub fn l2_lines(&self) -> usize {
        (self.l2_bytes / 128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_generation() {
        let p = DeviceProfile::gtx_1080ti();
        let t = DeviceProfile::rtx_2080ti();
        let a = DeviceProfile::rtx_3090();
        assert!(p.fp32_tflops < t.fp32_tflops && t.fp32_tflops < a.fp32_tflops);
        assert!(p.dram_gbs < t.dram_gbs && t.dram_gbs < a.dram_gbs);
        assert!(p.l2_bytes < t.l2_bytes && t.l2_bytes < a.l2_bytes);
    }

    #[test]
    fn pascal_has_no_fp16_speedup() {
        assert!(!DeviceProfile::gtx_1080ti().has_fp16_gemm());
        assert!(DeviceProfile::rtx_2080ti().has_fp16_gemm());
        assert!(DeviceProfile::rtx_3090().has_fp16_gemm());
    }

    #[test]
    fn l2_line_count() {
        assert_eq!(DeviceProfile::rtx_2080ti().l2_lines(), 5_632 * 1024 / 128);
    }

    #[test]
    fn evaluation_devices_are_three() {
        assert_eq!(DeviceProfile::evaluation_devices().len(), 3);
    }

    #[test]
    fn families_follow_architecture_generations() {
        assert_eq!(DeviceProfile::gtx_1080ti().family(), "pascal");
        assert_eq!(DeviceProfile::rtx_2080ti().family(), "turing");
        assert_eq!(DeviceProfile::rtx_3090().family(), "ampere");
        // Unknown boards fall back to a sanitized per-board name.
        let custom = DeviceProfile { name: "My Board X".to_owned(), ..DeviceProfile::rtx_3090() };
        assert_eq!(custom.family(), "my-board-x");
    }
}
