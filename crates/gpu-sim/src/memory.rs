//! The memory-movement cost model (§4.3 of the paper).
//!
//! Two costs bound a scatter/gather phase:
//!
//! 1. **Transaction pipeline**: every warp-level memory operation occupies a
//!    128-byte transaction slot regardless of how many useful bytes it
//!    carries. A warp of 32 threads issuing scalar FP16 (2-byte) accesses
//!    uses only 64/128 = 50% of its transaction (§4.3.1, Figure 8a), so the
//!    transaction count does not drop when switching FP32→FP16 — only
//!    *vectorized* FP16 (each thread moving 2 halves) restores 100%
//!    utilization and halves the count (Figure 8b).
//! 2. **DRAM traffic**: fetches on read misses plus write-backs of dirtied
//!    lines, at 32-byte sector granularity, simulated over the actual
//!    access trace by [`L2Cache`].
//!
//! The phase latency is the max of the two; which one binds is precisely
//! what the paper's Table 3 ablation explores.

use crate::cache::{L2Cache, LINE_BYTES};
use crate::{DeviceProfile, Micros};

/// Storage width of one feature element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemWidth {
    /// 32-bit float.
    F32,
    /// 16-bit float (the paper's quantized features).
    F16,
    /// 8-bit integer (investigated and found unhelpful for scatter, §4.3.1).
    I8,
}

impl ElemWidth {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ElemWidth::F32 => 4,
            ElemWidth::F16 => 2,
            ElemWidth::I8 => 1,
        }
    }
}

/// How a kernel's threads issue memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessMode {
    /// Element storage width.
    pub elem: ElemWidth,
    /// Elements moved per thread per instruction (1 = scalar; 2 = the
    /// paper's vectorized FP16 access via `half2`).
    pub vector_width: u64,
}

impl AccessMode {
    /// Scalar FP32 access (the all-baseline configuration).
    pub fn scalar_f32() -> AccessMode {
        AccessMode { elem: ElemWidth::F32, vector_width: 1 }
    }

    /// Scalar FP16 access: half the bytes but 50%-utilized transactions.
    pub fn scalar_f16() -> AccessMode {
        AccessMode { elem: ElemWidth::F16, vector_width: 1 }
    }

    /// Vectorized FP16 access (`half2`): full transactions, half the count.
    pub fn vectorized_f16() -> AccessMode {
        AccessMode { elem: ElemWidth::F16, vector_width: 2 }
    }

    /// Useful bytes one 128-byte transaction carries under this mode:
    /// `min(128, 32 threads x elem x vector_width)`.
    pub fn useful_bytes_per_transaction(self) -> u64 {
        (32 * self.elem.bytes() * self.vector_width).min(LINE_BYTES)
    }

    /// Transaction utilization in `(0, 1]`.
    pub fn utilization(self) -> f64 {
        self.useful_bytes_per_transaction() as f64 / LINE_BYTES as f64
    }
}

/// Accumulated cost of one memory-movement phase (one gather, one scatter,
/// or a fused run of them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Useful bytes the kernel asked to move.
    pub useful_bytes: u64,
    /// 128-byte transactions issued.
    pub transactions: u64,
    /// DRAM bytes fetched on read misses (32-byte sector granularity).
    pub dram_fetched: u64,
    /// DRAM bytes written back from dirtied lines.
    pub dram_written_back: u64,
    /// L2 line hits.
    pub l2_hits: u64,
    /// L2 line misses.
    pub l2_misses: u64,
}

impl PhaseReport {
    /// Total DRAM bytes transferred (fetches + write-backs).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_fetched + self.dram_written_back
    }

    /// Latency on `device`: max of transaction-pipeline time and DRAM time.
    pub fn latency(&self, device: &DeviceProfile) -> Micros {
        let xact_bw = device.dram_gbs * device.xact_bandwidth_ratio; // GB/s
        let xact_us = (self.transactions * LINE_BYTES) as f64 / (xact_bw * 1e3);
        let dram_us = self.dram_bytes() as f64 / (device.dram_gbs * 1e3);
        Micros(xact_us.max(dram_us))
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: PhaseReport) {
        self.useful_bytes += other.useful_bytes;
        self.transactions += other.transactions;
        self.dram_fetched += other.dram_fetched;
        self.dram_written_back += other.dram_written_back;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }
}

/// The trace-driven memory simulator: transaction accounting plus an L2
/// cache replayed over the engine's actual access addresses.
///
/// The engine allocates disjoint address ranges for its buffers (input
/// features, gather buffer, scatter buffer, output features) via
/// [`MemorySim::alloc`], then calls [`MemorySim::read`]/[`MemorySim::write`]
/// in exactly the order its CUDA kernels would touch memory. Phase
/// boundaries ([`MemorySim::take_report`]) let the caller attribute costs.
///
/// # Example
///
/// ```
/// use torchsparse_gpusim::{AccessMode, DeviceProfile, MemorySim};
///
/// let device = DeviceProfile::rtx_2080ti();
/// let mut sim = MemorySim::new(&device);
/// let buf = sim.alloc(1024);
/// sim.write(buf, 0, 512, AccessMode::scalar_f32());
/// sim.read(buf, 0, 512, AccessMode::scalar_f32());
/// let report = sim.take_report();
/// assert!(report.l2_hits > 0); // the read hits lines the write allocated
/// ```
#[derive(Debug)]
pub struct MemorySim {
    cache: L2Cache,
    report: PhaseReport,
    next_base: u64,
}

impl MemorySim {
    /// Creates a simulator with the device's L2 configuration.
    pub fn new(device: &DeviceProfile) -> MemorySim {
        MemorySim {
            cache: L2Cache::new(device.l2_bytes, device.l2_ways),
            report: PhaseReport::default(),
            next_base: 0,
        }
    }

    /// Allocates a buffer of `bytes` and returns its base address.
    ///
    /// Buffers are laid out contiguously with line alignment, like a GPU
    /// memory-pool allocator.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        let aligned = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next_base += aligned.max(LINE_BYTES);
        base
    }

    fn account(&mut self, addr: u64, bytes: u64, mode: AccessMode, is_write: bool) {
        if bytes == 0 {
            return;
        }
        self.report.useful_bytes += bytes;
        let per_xact = mode.useful_bytes_per_transaction();
        self.report.transactions += bytes.div_ceil(per_xact);
        let (missed, traffic) = self.cache.access_range_rw(addr, bytes, is_write);
        let touched = {
            let first = addr / LINE_BYTES;
            let last = (addr + bytes - 1) / LINE_BYTES;
            last - first + 1
        };
        self.report.dram_fetched += traffic.fetched;
        self.report.dram_written_back += traffic.written_back;
        self.report.l2_misses += missed;
        self.report.l2_hits += touched - missed;
    }

    /// Records a read of `[base + offset, base + offset + bytes)`.
    pub fn read(&mut self, base: u64, offset: u64, bytes: u64, mode: AccessMode) {
        self.account(base + offset, bytes, mode, false);
    }

    /// Records a write (write-allocate, no read-for-ownership; the eventual
    /// write-back is charged on the clean-to-dirty transition).
    pub fn write(&mut self, base: u64, offset: u64, bytes: u64, mode: AccessMode) {
        self.account(base + offset, bytes, mode, true);
    }

    /// Streams unrelated traffic through the L2 (models cache pollution by
    /// a GEMM between movement phases) without charging the current phase.
    pub fn pollute_cache(&mut self, bytes: u64) {
        self.cache.pollute(bytes);
    }

    /// Returns the report accumulated since the last call and resets it.
    /// The L2 contents persist across phases (that is the point).
    pub fn take_report(&mut self) -> PhaseReport {
        std::mem::take(&mut self.report)
    }

    /// Current L2 hit rate since construction.
    pub fn l2_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceProfile {
        DeviceProfile::rtx_2080ti()
    }

    #[test]
    fn access_mode_utilization() {
        assert_eq!(AccessMode::scalar_f32().useful_bytes_per_transaction(), 128);
        assert_eq!(AccessMode::scalar_f16().useful_bytes_per_transaction(), 64);
        assert_eq!(AccessMode::vectorized_f16().useful_bytes_per_transaction(), 128);
        assert!((AccessMode::scalar_f16().utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scalar_f16_moves_half_bytes_same_transactions() {
        // The §4.3.1 phenomenon: same element count, FP16 scalar issues the
        // same number of transactions as FP32.
        let dev = device();
        let elems: u64 = 1 << 20;

        let mut sim32 = MemorySim::new(&dev);
        let b32 = sim32.alloc(elems * 4);
        sim32.read(b32, 0, elems * 4, AccessMode::scalar_f32());
        let r32 = sim32.take_report();

        let mut sim16 = MemorySim::new(&dev);
        let b16 = sim16.alloc(elems * 2);
        sim16.read(b16, 0, elems * 2, AccessMode::scalar_f16());
        let r16 = sim16.take_report();

        assert_eq!(r32.transactions, r16.transactions);
        assert_eq!(r16.useful_bytes * 2, r32.useful_bytes);
        assert_eq!(r16.dram_fetched * 2, r32.dram_fetched, "DRAM fetch halves with FP16");
    }

    #[test]
    fn vectorized_f16_halves_transactions() {
        let dev = device();
        let elems: u64 = 1 << 20;
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(elems * 2);
        sim.read(b, 0, elems * 2, AccessMode::scalar_f16());
        let scalar = sim.take_report();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(elems * 2);
        sim.read(b, 0, elems * 2, AccessMode::vectorized_f16());
        let vec = sim.take_report();
        assert_eq!(vec.transactions * 2, scalar.transactions);
    }

    #[test]
    fn table3_speedup_shape() {
        // Cold streaming access (no reuse): FP32 -> scalar FP16 should give a
        // modest speedup (~1.35x with the calibrated transaction ratio),
        // while vectorized FP16 approaches 2x — the paper's Table 3 rows 1-3.
        let dev = device();
        let elems: u64 = 8 << 20; // far larger than L2

        let run = |mode: AccessMode, bytes_per_elem: u64| {
            let mut sim = MemorySim::new(&dev);
            let b = sim.alloc(elems * bytes_per_elem);
            sim.read(b, 0, elems * bytes_per_elem, mode);
            sim.take_report().latency(&dev).as_f64()
        };

        let fp32 = run(AccessMode::scalar_f32(), 4);
        let fp16_scalar = run(AccessMode::scalar_f16(), 2);
        let fp16_vec = run(AccessMode::vectorized_f16(), 2);

        let s_scalar = fp32 / fp16_scalar;
        let s_vec = fp32 / fp16_vec;
        assert!(
            (1.1..1.6).contains(&s_scalar),
            "scalar FP16 speedup {s_scalar} out of the paper's band"
        );
        assert!((1.8..2.05).contains(&s_vec), "vectorized FP16 speedup {s_vec} off");
        assert!(s_vec > s_scalar);
    }

    #[test]
    fn rmw_pattern_charges_fetch_and_writeback() {
        // Weight-stationary scatter: read-modify-write of output rows.
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(1 << 20);
        sim.read(b, 0, 128, AccessMode::scalar_f32());
        sim.write(b, 0, 128, AccessMode::scalar_f32());
        let r = sim.take_report();
        assert_eq!(r.dram_fetched, 128);
        assert_eq!(r.dram_written_back, 128);
        assert_eq!(r.dram_bytes(), 256);
    }

    #[test]
    fn streaming_write_does_not_fetch() {
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(1 << 20);
        sim.write(b, 0, 1 << 20, AccessMode::scalar_f32());
        let r = sim.take_report();
        assert_eq!(r.dram_fetched, 0);
        assert_eq!(r.dram_written_back, 1 << 20);
    }

    #[test]
    fn cache_reuse_cuts_dram() {
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(4096);
        sim.read(b, 0, 4096, AccessMode::scalar_f32());
        let cold = sim.take_report();
        sim.read(b, 0, 4096, AccessMode::scalar_f32());
        let warm = sim.take_report();
        assert_eq!(cold.dram_fetched, 4096);
        assert_eq!(warm.dram_bytes(), 0);
        assert_eq!(warm.l2_hits, 32);
        // Warm access is still transaction-bound, not free.
        assert!(warm.latency(&dev) > Micros::ZERO);
        assert!(warm.latency(&dev) < cold.latency(&dev));
    }

    #[test]
    fn pollution_not_charged_but_evicts() {
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(4096);
        sim.read(b, 0, 4096, AccessMode::scalar_f32());
        sim.take_report();
        sim.pollute_cache(8 * dev.l2_bytes);
        let polluted_report = sim.take_report();
        assert_eq!(polluted_report.transactions, 0, "pollution is free for the phase");
        sim.read(b, 0, 4096, AccessMode::scalar_f32());
        let after = sim.take_report();
        assert_eq!(after.dram_fetched, 4096, "pollution must have evicted the buffer");
    }

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let a = sim.alloc(100);
        let b = sim.alloc(1);
        let c = sim.alloc(129);
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 128);
        assert!(c >= b + 128);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(128);
        sim.read(b, 0, 0, AccessMode::scalar_f32());
        assert_eq!(sim.take_report(), PhaseReport::default());
    }

    #[test]
    fn random_half_line_rows_fetch_sectors_only() {
        // FP16 rows of 64 bytes at random line-sized strides: each miss
        // fetches only the two touched sectors, not the whole line — the
        // sector-granularity property that lets FP16 halve DRAM traffic
        // even for narrow rows.
        let dev = device();
        let mut sim = MemorySim::new(&dev);
        let b = sim.alloc(1 << 22);
        for i in 0..1000u64 {
            sim.read(b, i * 997 * 128 % (1 << 22), 64, AccessMode::scalar_f16());
        }
        let r = sim.take_report();
        assert!(r.dram_fetched <= 1000 * 64 + 64, "fetched {}", r.dram_fetched);
    }

    #[test]
    fn report_merge() {
        let mut a = PhaseReport {
            useful_bytes: 1,
            transactions: 2,
            dram_fetched: 3,
            dram_written_back: 4,
            l2_hits: 5,
            l2_misses: 6,
        };
        a.merge(PhaseReport {
            useful_bytes: 10,
            transactions: 20,
            dram_fetched: 30,
            dram_written_back: 40,
            l2_hits: 50,
            l2_misses: 60,
        });
        assert_eq!(a.useful_bytes, 11);
        assert_eq!(a.transactions, 22);
        assert_eq!(a.dram_bytes(), 77);
        assert_eq!(a.l2_hits, 55);
        assert_eq!(a.l2_misses, 66);
    }
}
