//! GEMM latency model (§3 Principle I, §4.2, Figure 7).
//!
//! Matrix multiplication on a GPU only approaches peak throughput when the
//! workload offers enough parallel tiles to fill every SM. Sparse
//! convolution's per-offset GEMMs are *small* (tens of thousands of rows,
//! 16-256 channels), so the paper measures only ~30% utilization for the
//! separate-matmul baseline and shows that batching restores regularity.
//!
//! We model utilization with a saturating curve in the *effective row count*
//! (rows x batch for bmm): `util(r) = util_max * r / (r + rows_half)`,
//! attenuated for very narrow channel dimensions. The two parameters live in
//! [`DeviceProfile`] and are calibrated once against the paper's anchors
//! (8.1 TFLOP/s separate / 11.9 TFLOP/s adaptive on RTX 2080 Ti, Table 2).

use crate::{DeviceProfile, Micros};

/// Numeric precision of a GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit floating point.
    Fp32,
    /// 16-bit storage with FP32 accumulation (tensor-core style).
    Fp16,
}

/// Shape of a (possibly batched) GEMM: `batch x (m x k) . (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of the left operand (map entries for sparse conv).
    pub m: usize,
    /// Reduction dimension (input channels).
    pub k: usize,
    /// Columns of the right operand (output channels).
    pub n: usize,
    /// Batch count (1 for a plain `mm`).
    pub batch: usize,
}

impl GemmShape {
    /// A single (non-batched) GEMM.
    pub fn mm(m: usize, k: usize, n: usize) -> GemmShape {
        GemmShape { m, k, n, batch: 1 }
    }

    /// A batched GEMM of `batch` equal problems.
    pub fn bmm(batch: usize, m: usize, k: usize, n: usize) -> GemmShape {
        GemmShape { m, k, n, batch }
    }

    /// Total floating point operations (2mnk per problem).
    pub fn flops(&self) -> f64 {
        2.0 * self.batch as f64 * self.m as f64 * self.k as f64 * self.n as f64
    }
}

/// The GEMM latency model for one device.
#[derive(Debug, Clone)]
pub struct GemmModel {
    device: DeviceProfile,
}

impl GemmModel {
    /// Creates a model for `device`.
    pub fn new(device: DeviceProfile) -> GemmModel {
        GemmModel { device }
    }

    /// The device this model simulates.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Peak throughput for a precision, TFLOP/s.
    pub fn peak_tflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.device.fp32_tflops,
            Precision::Fp16 => self.device.fp16_tflops,
        }
    }

    /// Modeled utilization in `(0, util_max]` for a shape.
    ///
    /// Batched problems contribute their full row count to the parallelism
    /// pool — this is why `bmm` over many small maps beats sequential `mm`
    /// (Figure 7) even though each sub-problem is unchanged.
    pub fn utilization(&self, shape: GemmShape) -> f64 {
        let rows = (shape.m * shape.batch) as f64;
        if rows == 0.0 {
            return 0.0;
        }
        let width = shape.k.min(shape.n) as f64;
        // Wide-channel GEMMs expose extra tile parallelism along n/k, so
        // they saturate at fewer rows (a 256-channel layer with 2k rows is
        // a perfectly healthy cuBLAS problem).
        let width_credit = (width / 64.0).clamp(1.0, 4.0);
        let row_util = rows * width_credit / (rows * width_credit + self.device.gemm_rows_half);
        // Narrow channel dimensions cannot fill a tile's k/n extents.
        let channel_util = (width / 64.0).min(1.0);
        self.device.gemm_util_max * row_util * channel_util.max(0.25)
    }

    /// Achieved throughput for a shape, TFLOP/s.
    pub fn achieved_tflops(&self, shape: GemmShape, precision: Precision) -> f64 {
        self.peak_tflops(precision) * self.utilization(shape)
    }

    /// Latency of one kernel executing `shape`, including launch overhead.
    pub fn latency(&self, shape: GemmShape, precision: Precision) -> Micros {
        let launch = Micros(self.device.launch_overhead_us);
        if shape.flops() == 0.0 {
            return launch;
        }
        let tflops = self.achieved_tflops(shape, precision);
        // flops / (TFLOP/s) = picoseconds * flops; convert to microseconds.
        let compute_us = shape.flops() / (tflops * 1e6);
        launch + Micros(compute_us)
    }

    /// Latency of running each shape as its own kernel (the separate
    /// baseline of Figure 6b: one launch per weight offset).
    pub fn sequential_latency(&self, shapes: &[GemmShape], precision: Precision) -> Micros {
        shapes.iter().map(|&s| self.latency(s, precision)).sum()
    }

    /// Prior cost of a partitioned streaming phase (gather/scatter movement
    /// or a row-panelled GEMM dispatch): `bytes` of traffic split across
    /// `tasks` independent chunks.
    ///
    /// Two opposing terms shape the curve. With fewer chunks than one wave
    /// of concurrent workers the device cannot reach full bandwidth, so the
    /// streaming term inflates by `wave / tasks`; every chunk also pays a
    /// small dispatch cost (a fraction of a kernel launch — chunks are
    /// intra-kernel blocks, not launches), so very fine partitions become
    /// dispatch-bound. The autotuner uses this as the granularity prior for
    /// the gather/scatter chunk size and the GEMM panel width; the minimum
    /// sits where the two terms cross.
    pub fn partitioned_latency(&self, bytes: f64, tasks: usize) -> Micros {
        /// Concurrent chunk workers one wave of the device sustains.
        const WAVE: f64 = 64.0;
        /// A chunk dispatch costs this fraction of a kernel launch.
        const DISPATCH_FRACTION: f64 = 1.0 / 16.0;
        let tasks = tasks.max(1) as f64;
        // GB/s = bytes per microsecond * 1e3.
        let stream_us = bytes / (self.device.dram_gbs * 1e3);
        let underfill = (WAVE / tasks).max(1.0);
        let dispatch_us = tasks * self.device.launch_overhead_us * DISPATCH_FRACTION;
        Micros(stream_us * underfill + dispatch_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GemmModel {
        GemmModel::new(DeviceProfile::rtx_2080ti())
    }

    #[test]
    fn flops_counting() {
        assert_eq!(GemmShape::mm(10, 20, 30).flops(), 12_000.0);
        assert_eq!(GemmShape::bmm(2, 10, 20, 30).flops(), 24_000.0);
    }

    #[test]
    fn utilization_increases_with_rows() {
        let m = model();
        let small = m.utilization(GemmShape::mm(1_000, 64, 64));
        let large = m.utilization(GemmShape::mm(1_000_000, 64, 64));
        assert!(small < large);
        assert!(large <= m.device().gemm_util_max);
    }

    #[test]
    fn batching_raises_utilization() {
        // The Figure 7 mechanism: same per-problem size, more batch, more
        // utilization.
        let m = model();
        let separate = m.utilization(GemmShape::mm(20_000, 32, 32));
        let batched = m.utilization(GemmShape::bmm(13, 20_000, 32, 32));
        assert!(batched > separate * 1.3);
    }

    #[test]
    fn figure7_speedup_band() {
        // 26 equal maps of ~60k rows (a MinkUNet first-layer workload on
        // SemanticKITTI, Figure 12), C=32: batching everything in one bmm
        // should land in the paper's ~1.2-1.6x band over sequential mm
        // (Figure 7 shows ~1.5x at full batch).
        let m = model();
        let shapes: Vec<GemmShape> = (0..26).map(|_| GemmShape::mm(60_000, 32, 32)).collect();
        let separate = m.sequential_latency(&shapes, Precision::Fp16);
        let batched = m.latency(GemmShape::bmm(26, 60_000, 32, 32), Precision::Fp16);
        let speedup = separate.as_f64() / batched.as_f64();
        assert!((1.2..1.7).contains(&speedup), "batching speedup {speedup} off the Figure 7 band");
    }

    #[test]
    fn table2_utilization_anchors() {
        // Table 2 (SemanticKITTI column): separate matmul at ~8.1 TFLOP/s,
        // adaptive grouping at ~11.9 TFLOP/s on RTX 2080 Ti with FP16.
        let m = model();
        let separate = m.achieved_tflops(GemmShape::mm(60_000, 32, 32), Precision::Fp16);
        assert!((6.0..11.0).contains(&separate), "separate anchor {separate} TFLOP/s off");
        let grouped = m.achieved_tflops(GemmShape::bmm(26, 60_000, 32, 32), Precision::Fp16);
        assert!((10.0..13.5).contains(&grouped), "grouped anchor {grouped} TFLOP/s off");
    }

    #[test]
    fn separate_baseline_utilization_anchor() {
        // §3: MinkUNet (0.5x) separate matmul achieves ~30% utilization on
        // RTX 2080 Ti. A typical first-layer per-offset map has ~30-60k rows
        // at C=32.
        let m = model();
        let util = m.utilization(GemmShape::mm(45_000, 32, 32));
        assert!((0.15..0.45).contains(&util), "baseline utilization {util} out of band");
    }

    #[test]
    fn fp16_faster_only_with_tensor_cores() {
        let shape = GemmShape::mm(100_000, 64, 64);
        let turing = GemmModel::new(DeviceProfile::rtx_2080ti());
        assert!(turing.latency(shape, Precision::Fp16) < turing.latency(shape, Precision::Fp32));
        let pascal = GemmModel::new(DeviceProfile::gtx_1080ti());
        assert_eq!(pascal.latency(shape, Precision::Fp16), pascal.latency(shape, Precision::Fp32));
    }

    #[test]
    fn empty_shape_costs_launch_only() {
        let m = model();
        let lat = m.latency(GemmShape::mm(0, 32, 32), Precision::Fp32);
        assert_eq!(lat.as_f64(), m.device().launch_overhead_us);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        // Many tiny kernels are slower than one fused kernel even at equal
        // FLOPs — the reason excessive kernel calls hurt (Figure 6b).
        let m = model();
        let tiny: Vec<GemmShape> = (0..27).map(|_| GemmShape::mm(100, 16, 16)).collect();
        let fused = m.latency(GemmShape::bmm(27, 100, 16, 16), Precision::Fp32);
        let separate = m.sequential_latency(&tiny, Precision::Fp32);
        assert!(separate.as_f64() > 3.0 * fused.as_f64());
    }

    #[test]
    fn partitioned_latency_has_interior_minimum() {
        // A few MB of movement: one giant chunk underfills the device, tens
        // of thousands of tiny chunks are dispatch-bound, and a moderate
        // partition beats both.
        let m = model();
        let bytes = 8.0 * 1024.0 * 1024.0;
        let coarse = m.partitioned_latency(bytes, 1);
        let moderate = m.partitioned_latency(bytes, 128);
        let fine = m.partitioned_latency(bytes, 100_000);
        assert!(moderate < coarse, "moderate {moderate} vs coarse {coarse}");
        assert!(moderate < fine, "moderate {moderate} vs fine {fine}");
    }

    #[test]
    fn partitioned_latency_monotone_in_bytes() {
        let m = model();
        let small = m.partitioned_latency(1e6, 64);
        let large = m.partitioned_latency(1e8, 64);
        assert!(small < large);
    }

    #[test]
    fn narrow_channels_penalized() {
        let m = model();
        let narrow = m.utilization(GemmShape::mm(100_000, 4, 4));
        let wide = m.utilization(GemmShape::mm(100_000, 128, 128));
        assert!(narrow < wide);
    }
}
