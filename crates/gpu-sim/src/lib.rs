//! Trace-driven GPU cost simulator.
//!
//! The TorchSparse paper's optimizations act on four first-order quantities
//! of a CUDA device: **memory transactions** (128-byte, warp-coalesced),
//! **L2 cache reuse**, **GEMM utilization** (a strong function of workload
//! size and batching), and **kernel launch counts**. This crate models all
//! four so that the reproduction's CPU engine can *execute* sparse
//! convolutions while *accounting* what each design choice would cost on a
//! real GPU. Because the paper's evaluation reports relative speedups, a
//! simulator that preserves these mechanisms reproduces the experiment
//! shapes without CUDA.
//!
//! - [`DeviceProfile`]: published characteristics of GTX 1080 Ti /
//!   RTX 2080 Ti / RTX 3090 plus a few calibrated model parameters.
//! - [`MemorySim`]: counts memory transactions (pipeline cost) and simulates
//!   a set-associative LRU L2 over the *actual access trace* (DRAM cost).
//!   The latency of a movement phase is the max of the two — this is what
//!   makes scalar FP16 access disappointing (§4.3.1) and locality-aware
//!   ordering rewarding (§4.3.2).
//! - [`GemmModel`]: a saturating-utilization GEMM latency model reproducing
//!   the batching behaviour of Figure 7.
//! - [`Timeline`]: per-stage latency ledger used for the Figure 4 breakdown
//!   and end-to-end totals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod device;
mod gemm_model;
mod memory;
mod timeline;

pub use cache::L2Cache;
pub use device::DeviceProfile;
pub use gemm_model::{GemmModel, GemmShape, Precision};
pub use memory::{AccessMode, ElemWidth, MemorySim, PhaseReport};
pub use timeline::{Stage, Timeline};

/// Simulated latency in microseconds.
///
/// A plain `f64` newtype: all simulator outputs are deterministic functions
/// of the trace, so latencies are exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Micros(pub f64);

impl Micros {
    /// Zero latency.
    pub const ZERO: Micros = Micros(0.0);

    /// The wrapped value in microseconds.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts to milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1e3
    }

    /// Frames per second if one frame takes this long.
    ///
    /// Returns `f64::INFINITY` for zero latency.
    pub fn fps(self) -> f64 {
        1e6 / self.0
    }
}

impl std::ops::Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl std::ops::Mul<f64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: f64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl std::iter::Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|m| m.0).sum())
    }
}

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.3} ms", self.0 / 1e3)
        } else {
            write!(f, "{:.1} us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_arithmetic() {
        let a = Micros(10.0) + Micros(5.0);
        assert_eq!(a, Micros(15.0));
        let mut b = Micros(1.0);
        b += Micros(2.0);
        assert_eq!(b, Micros(3.0));
        assert_eq!(Micros(10.0) - Micros(4.0), Micros(6.0));
        assert_eq!(Micros(3.0) * 2.0, Micros(6.0));
    }

    #[test]
    fn micros_sum() {
        let total: Micros = [Micros(1.0), Micros(2.0), Micros(3.0)].into_iter().sum();
        assert_eq!(total, Micros(6.0));
    }

    #[test]
    fn micros_fps() {
        assert!((Micros(100_000.0).fps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn micros_display() {
        assert_eq!(Micros(500.0).to_string(), "500.0 us");
        assert_eq!(Micros(2500.0).to_string(), "2.500 ms");
    }
}
