/// A set-associative LRU cache over 128-byte lines with dirty-line
/// tracking, simulated at line granularity; DRAM traffic is accounted at
/// 32-byte *sector* granularity, like real GDDR memory controllers.
///
/// Used as the device L2: the gather/scatter traces of the sparse engine are
/// replayed through it, and misses translate into DRAM traffic. This is what
/// distinguishes the paper's *weight-stationary* baseline (unique indices per
/// weight → no reuse, §4.3.2, Figure 9a) from the *locality-aware* order,
/// and what lets a fused gather sequence keep "data from the same type of
/// buffer" resident.
///
/// # Example
///
/// ```
/// use torchsparse_gpusim::L2Cache;
///
/// let mut cache = L2Cache::new(1024 * 128, 4); // 1024 lines, 4-way
/// assert!(!cache.access(0));   // cold miss
/// assert!(cache.access(64));   // same 128-byte line: hit
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    /// Flattened set-associative store: set `s` occupies
    /// `entries[s * ways .. s * ways + len[s]]` in LRU order (front = LRU).
    /// Each entry packs the line tag in the low 63 bits and the dirty flag
    /// in bit 63 — one contiguous `u64` scan per lookup instead of a
    /// pointer chase through per-set vectors, which matters because the
    /// movement simulation replays every line of every buffer sweep.
    entries: Vec<u64>,
    len: Vec<u8>,
    ways: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

/// Dirty flag bit of a packed cache entry. Line tags are byte addresses
/// divided by [`LINE_BYTES`], so even the pollution range at `1 << 62`
/// stays far below bit 63.
const DIRTY: u64 = 1 << 63;

/// Cache line size in bytes (the CUDA memory transaction granularity).
pub const LINE_BYTES: u64 = 128;
/// DRAM sector size in bytes (the memory-controller transfer granularity).
pub const SECTOR_BYTES: u64 = 32;

/// DRAM traffic resulting from one cache access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramTraffic {
    /// Bytes fetched from DRAM (read misses; write misses do not fetch —
    /// GPUs write-allocate without read-for-ownership at sector granularity).
    pub fetched: u64,
    /// Bytes that will be written back to DRAM (charged when a resident
    /// line first becomes dirty, once per residency).
    pub written_back: u64,
}

impl DramTraffic {
    /// Total DRAM bytes moved.
    pub fn total(&self) -> u64 {
        self.fetched + self.written_back
    }

    fn merge(&mut self, other: DramTraffic) {
        self.fetched += other.fetched;
        self.written_back += other.written_back;
    }
}

impl L2Cache {
    /// Creates a cache of `capacity_bytes` with the given associativity.
    ///
    /// The set count is rounded down to a power of two (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or the capacity holds fewer than `ways` lines.
    pub fn new(capacity_bytes: u64, ways: usize) -> L2Cache {
        assert!(ways > 0, "cache must have at least one way");
        assert!(ways <= usize::from(u8::MAX), "per-set length is tracked in a byte");
        let lines = (capacity_bytes / LINE_BYTES) as usize;
        assert!(lines >= ways, "capacity too small for {ways} ways");
        // Round the set count down to a power of two for cheap indexing.
        let raw_sets = (lines / ways).max(1);
        let sets =
            if raw_sets.is_power_of_two() { raw_sets } else { raw_sets.next_power_of_two() / 2 };
        L2Cache {
            entries: vec![0; sets * ways],
            len: vec![0; sets],
            ways,
            set_mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Read-accesses the line containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(addr / LINE_BYTES, false, LINE_BYTES).0
    }

    /// Accesses one line; returns `(hit, dram_traffic)`. `touched_bytes` is
    /// how many sector-aligned bytes of the line the access covers (drives
    /// the DRAM charge on a miss / dirty transition).
    fn access_line(
        &mut self,
        line: u64,
        is_write: bool,
        touched_bytes: u64,
    ) -> (bool, DramTraffic) {
        let set_idx = (line & self.set_mask) as usize;
        let base = set_idx * self.ways;
        let len = usize::from(self.len[set_idx]);
        let set = &mut self.entries[base..base + len];
        let mut traffic = DramTraffic::default();
        // Tags are unique within a set, so scanning from the MRU end finds
        // hot lines (the overwhelmingly common case in streaming sweeps)
        // after one or two probes instead of walking all `ways`.
        if let Some(pos) = set.iter().rposition(|&e| e & !DIRTY == line) {
            // Hit: move to MRU, possibly transitioning clean -> dirty.
            let mut entry = set[pos];
            if is_write && entry & DIRTY == 0 {
                entry |= DIRTY;
                traffic.written_back = touched_bytes;
            }
            set.copy_within(pos + 1.., pos);
            set[len - 1] = entry;
            self.hits += 1;
            (true, traffic)
        } else {
            let entry = if is_write { line | DIRTY } else { line };
            if len == self.ways {
                // Evict LRU (write-back already charged) and append at MRU.
                set.copy_within(1.., 0);
                set[len - 1] = entry;
            } else {
                self.entries[base + len] = entry;
                self.len[set_idx] = (len + 1) as u8;
            }
            self.misses += 1;
            if is_write {
                // Write-allocate without fetch; charge the eventual
                // write-back of the touched sectors.
                traffic.written_back = touched_bytes;
            } else {
                traffic.fetched = touched_bytes;
            }
            (false, traffic)
        }
    }

    /// Touches every line in `[addr, addr + bytes)` as a read or write;
    /// returns `(missed_lines, dram_traffic)`.
    pub fn access_range_rw(&mut self, addr: u64, bytes: u64, is_write: bool) -> (u64, DramTraffic) {
        let mut traffic = DramTraffic::default();
        if bytes == 0 {
            return (0, traffic);
        }
        let end = addr + bytes;
        let first = addr / LINE_BYTES;
        let last = (end - 1) / LINE_BYTES;
        let mut missed = 0;
        for line in first..=last {
            let line_start = line * LINE_BYTES;
            let line_end = line_start + LINE_BYTES;
            // Sector-aligned coverage of this access within the line.
            let lo = addr.max(line_start) / SECTOR_BYTES * SECTOR_BYTES;
            let hi = (end.min(line_end)).div_ceil(SECTOR_BYTES) * SECTOR_BYTES;
            let touched = hi - lo;
            let (hit, t) = self.access_line(line, is_write, touched);
            if !hit {
                missed += 1;
            }
            traffic.merge(t);
        }
        (missed, traffic)
    }

    /// Touches every line in `[addr, addr + bytes)` as reads; returns the
    /// number of missing lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        self.access_range_rw(addr, bytes, false).0
    }

    /// Streams `bytes` of unrelated data through the cache, evicting LRU
    /// contents — models the pollution a large GEMM causes between the
    /// baseline's interleaved gather/scatter phases (§4.3.2).
    pub fn pollute(&mut self, bytes: u64) {
        // Use a private high address range that callers never read back.
        const POLLUTION_BASE: u64 = 1 << 62;
        let lines = bytes / LINE_BYTES;
        for i in 0..lines {
            self.access_line(POLLUTION_BASE / LINE_BYTES + i, false, LINE_BYTES);
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.len.fill(0);
        self.hits = 0;
        self.misses = 0;
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.entries.len() as u64 * LINE_BYTES
    }

    /// Number of sets.
    #[cfg(test)]
    fn num_sets(&self) -> usize {
        self.len.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = L2Cache::new(128 * 64, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(127)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set x 2 ways.
        let mut c = L2Cache::new(128 * 2, 2);
        assert_eq!(c.num_sets(), 1);
        c.access(0); // line 0
        c.access(128); // line 1
        c.access(0); // touch line 0 -> MRU
        c.access(256); // line 2 evicts line 1 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(128), "line 1 must have been evicted");
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = L2Cache::new(128 * 1024, 16);
        assert_eq!(c.access_range(0, 256), 2); // lines 0 and 1
        assert_eq!(c.access_range(0, 256), 0); // both resident
        assert_eq!(c.access_range(100, 56), 0); // bytes 100..156 touch lines 0-1, both resident
        assert_eq!(c.access_range(256, 1), 1); // line 2 is cold
    }

    #[test]
    fn read_miss_fetches_touched_sectors_only() {
        let mut c = L2Cache::new(128 * 1024, 16);
        // 64 bytes of a cold line: fetch exactly two 32-byte sectors.
        let (missed, t) = c.access_range_rw(0, 64, false);
        assert_eq!(missed, 1);
        assert_eq!(t.fetched, 64);
        assert_eq!(t.written_back, 0);
        // Unaligned 4-byte read of a cold line: one full sector.
        let (_, t) = c.access_range_rw(1000 * 128 + 5, 4, false);
        assert_eq!(t.fetched, 32);
    }

    #[test]
    fn write_miss_charges_writeback_not_fetch() {
        let mut c = L2Cache::new(128 * 1024, 16);
        let (missed, t) = c.access_range_rw(0, 128, true);
        assert_eq!(missed, 1);
        assert_eq!(t.fetched, 0, "GPU write-allocate does not read-for-ownership");
        assert_eq!(t.written_back, 128);
        // Re-writing the same (now dirty) line is free.
        let (_, t) = c.access_range_rw(0, 128, true);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn read_then_write_charges_fetch_and_writeback() {
        // The read-modify-write pattern of weight-stationary scatter.
        let mut c = L2Cache::new(128 * 1024, 16);
        let (_, tr) = c.access_range_rw(0, 128, false);
        let (_, tw) = c.access_range_rw(0, 128, true);
        assert_eq!(tr.fetched, 128);
        assert_eq!(tw.written_back, 128, "clean->dirty transition charges write-back");
        assert_eq!(tr.fetched + tw.total(), 256);
    }

    #[test]
    fn pollution_evicts_working_set() {
        let mut c = L2Cache::new(128 * 128, 8); // 128 lines
        for i in 0..64 {
            c.access(i * 128);
        }
        // Pollute with 4x the capacity.
        c.pollute(4 * c.capacity_bytes());
        c.reset_counters_for_test();
        let mut missed = 0;
        for i in 0..64 {
            if !c.access(i * 128) {
                missed += 1;
            }
        }
        assert!(missed > 48, "most of the working set should be gone, missed {missed}");
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = L2Cache::new(128 * 1024, 16); // 1024 lines
        for round in 0..3 {
            for i in 0..256u64 {
                let hit = c.access(i * 128);
                if round > 0 {
                    assert!(hit, "round {round} line {i} should hit");
                }
            }
        }
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = L2Cache::new(128 * 64, 4);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        L2Cache::new(1024, 0);
    }

    impl L2Cache {
        fn reset_counters_for_test(&mut self) {
            self.hits = 0;
            self.misses = 0;
        }
    }

    /// A brutally simple reference cache: per-set vector scanned linearly
    /// with explicit LRU timestamps. Used to cross-check the production
    /// implementation's hit/miss decisions on random traces.
    struct ReferenceCache {
        sets: Vec<Vec<(u64, u64)>>, // (tag, last_used)
        ways: usize,
        set_mask: u64,
        clock: u64,
    }

    impl ReferenceCache {
        fn like(c: &L2Cache) -> ReferenceCache {
            ReferenceCache {
                sets: vec![Vec::new(); c.num_sets()],
                ways: c.ways,
                set_mask: c.set_mask,
                clock: 0,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            self.clock += 1;
            let line = addr / LINE_BYTES;
            let set = &mut self.sets[(line & self.set_mask) as usize];
            if let Some(e) = set.iter_mut().find(|e| e.0 == line) {
                e.1 = self.clock;
                return true;
            }
            if set.len() == self.ways {
                let lru = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.1)
                    .map(|(i, _)| i)
                    .expect("non-empty set");
                set.remove(lru);
            }
            set.push((line, self.clock));
            false
        }
    }

    #[test]
    fn matches_reference_model_on_random_trace() {
        let mut real = L2Cache::new(128 * 256, 4);
        let mut reference = ReferenceCache::like(&real);
        // Deterministic pseudo-random trace with locality bursts.
        let mut state = 0x1234_5678u64;
        for i in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = if i % 3 == 0 {
                (state % 200) * LINE_BYTES // hot region
            } else {
                (state % 4096) * LINE_BYTES // cold sprawl
            };
            assert_eq!(
                real.access(addr),
                reference.access(addr),
                "divergence at access {i} addr {addr}"
            );
        }
        assert!(real.hits() > 0 && real.misses() > 0);
    }
}
