use crate::Micros;
use std::fmt;

/// Execution stage of a sparse CNN, matching the paper's Figure 4 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Map search, output coordinate calculation, table construction.
    Mapping,
    /// Gathering input features into contiguous buffers.
    Gather,
    /// Matrix multiplication.
    MatMul,
    /// Scatter-accumulating partial sums into output features.
    Scatter,
    /// Everything else (normalization, activation, heads, NMS...).
    Other,
}

impl Stage {
    /// All stages in display order.
    pub const ALL: [Stage; 5] =
        [Stage::Mapping, Stage::Gather, Stage::MatMul, Stage::Scatter, Stage::Other];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Mapping => "mapping",
            Stage::Gather => "gather",
            Stage::MatMul => "matmul",
            Stage::Scatter => "scatter",
            Stage::Other => "other",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-stage latency ledger for one inference run.
///
/// # Example
///
/// ```
/// use torchsparse_gpusim::{Micros, Stage, Timeline};
///
/// let mut t = Timeline::new();
/// t.add(Stage::Gather, Micros(120.0));
/// t.add(Stage::MatMul, Micros(80.0));
/// assert_eq!(t.total(), Micros(200.0));
/// assert!((t.fraction(Stage::Gather) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    stages: [f64; 5],
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    fn slot(stage: Stage) -> usize {
        Stage::ALL.iter().position(|&s| s == stage).expect("stage in ALL")
    }

    /// Adds latency to a stage.
    pub fn add(&mut self, stage: Stage, latency: Micros) {
        self.stages[Self::slot(stage)] += latency.as_f64();
    }

    /// Latency accumulated in a stage.
    pub fn stage(&self, stage: Stage) -> Micros {
        Micros(self.stages[Self::slot(stage)])
    }

    /// Total latency across stages.
    pub fn total(&self) -> Micros {
        Micros(self.stages.iter().sum())
    }

    /// A stage's fraction of the total (0 when the timeline is empty).
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total().as_f64();
        if total == 0.0 {
            0.0
        } else {
            self.stage(stage).as_f64() / total
        }
    }

    /// Data movement = gather + scatter (the paper's combined category).
    pub fn data_movement(&self) -> Micros {
        self.stage(Stage::Gather) + self.stage(Stage::Scatter)
    }

    /// Accumulates another timeline into this one.
    pub fn merge(&mut self, other: &Timeline) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            *a += b;
        }
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        write!(f, "total {total}")?;
        for stage in Stage::ALL {
            let us = self.stage(stage);
            if us.as_f64() > 0.0 {
                write!(f, " | {} {} ({:.0}%)", stage, us, 100.0 * self.fraction(stage))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut t = Timeline::new();
        t.add(Stage::Mapping, Micros(10.0));
        t.add(Stage::Mapping, Micros(5.0));
        t.add(Stage::Other, Micros(85.0));
        assert_eq!(t.stage(Stage::Mapping), Micros(15.0));
        assert_eq!(t.total(), Micros(100.0));
        assert!((t.fraction(Stage::Mapping) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(Timeline::new().fraction(Stage::MatMul), 0.0);
    }

    #[test]
    fn data_movement_combines_gather_scatter() {
        let mut t = Timeline::new();
        t.add(Stage::Gather, Micros(30.0));
        t.add(Stage::Scatter, Micros(12.0));
        t.add(Stage::MatMul, Micros(100.0));
        assert_eq!(t.data_movement(), Micros(42.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Timeline::new();
        a.add(Stage::Gather, Micros(1.0));
        let mut b = Timeline::new();
        b.add(Stage::Gather, Micros(2.0));
        b.add(Stage::MatMul, Micros(3.0));
        a.merge(&b);
        assert_eq!(a.stage(Stage::Gather), Micros(3.0));
        assert_eq!(a.stage(Stage::MatMul), Micros(3.0));
    }

    #[test]
    fn display_contains_stages() {
        let mut t = Timeline::new();
        t.add(Stage::MatMul, Micros(50.0));
        let s = t.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("100%"));
    }
}
