//! Minimal property-based testing, API-compatible with the subset of the
//! `proptest` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own runner: strategies are ranges, tuples of strategies, and
//! [`collection::vec`]; the [`proptest!`] macro generates `#[test]` functions
//! that draw inputs from a deterministic seeded generator and run the body
//! for [`ProptestConfig::cases`] iterations. `prop_assert!` failures report
//! the failing case index; because generation is fully deterministic, any
//! failure reproduces exactly on re-run.
//!
//! Deliberately not implemented: shrinking, persistence files, `any::<T>()`,
//! `prop_oneof!`, mapped/filtered strategies — nothing in this repository
//! uses them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of random test inputs.
///
/// Implemented for numeric ranges (`-5i32..5`, `0.0f32..1.0`), tuples of
/// strategies up to arity 6, and [`collection::vec`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{RngExt, StdRng, Strategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: draws inputs and evaluates the body `config.cases`
/// times, panicking (so the surrounding `#[test]` fails) on the first case
/// whose body returns an error.
///
/// Used by the expansion of [`proptest!`]; not called directly.
pub fn run_proptest<F>(config: ProptestConfig, property: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    // Seed derived from the property name so distinct properties explore
    // distinct inputs, yet every run of the same property is identical.
    let seed = property
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..config.cases {
        if let Err(msg) = case(&mut rng) {
            panic!("property '{property}' failed at case {i}/{}: {msg}", config.cases);
        }
    }
}

/// Defines property-based `#[test]` functions.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     #[test]
///     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let mut __proptest_case =
                        move || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the current case
/// with both values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and multiple args with a trailing comma must parse.
        #[test]
        fn ranges_stay_in_bounds(
            a in -5i32..5,
            b in 0usize..10,
            c in -1.0f32..1.0,
        ) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((-1.0..1.0).contains(&c), "c = {c}");
        }

        #[test]
        fn tuples_and_vecs(sites in crate::collection::vec((0i32..2, -8i32..8, -8i32..8), 1..20)) {
            prop_assert!(!sites.is_empty() && sites.len() < 20);
            for &(b, x, y) in &sites {
                prop_assert!((0..2).contains(&b));
                prop_assert!((-8..8).contains(&x) && (-8..8).contains(&y));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_works(seed in 0u64..1000) {
            prop_assert_eq!(seed.min(999), seed);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", |_rng| {
                Err("nope".to_string())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("case 0"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..1000, 5..6);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
