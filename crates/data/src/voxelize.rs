use crate::PointCloud;
use std::collections::HashMap;
use torchsparse_coords::Coord;
use torchsparse_core::{CoreError, SparseTensor};
use torchsparse_tensor::Matrix;

/// Quantizes point clouds into sparse voxel tensors.
///
/// Points falling into the same voxel are averaged (the standard
/// voxelization used by MinkUNet and CenterPoint preprocessing). Per-voxel
/// features are `[intensity, dx, dy, dz, ...]` — the mean intensity and the
/// mean offset of the points from the voxel center — zero-padded or
/// truncated to the requested channel count.
#[derive(Debug, Clone, PartialEq)]
pub struct Voxelizer {
    /// Voxel edge length in meters.
    pub voxel_size: f32,
    /// Output feature channels.
    pub channels: usize,
    /// Batch index assigned to the produced tensor.
    pub batch: i32,
}

impl Voxelizer {
    /// Creates a voxelizer.
    ///
    /// # Panics
    ///
    /// Panics if `voxel_size` is not positive or `channels == 0`.
    pub fn new(voxel_size: f32, channels: usize) -> Voxelizer {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        assert!(channels > 0, "channels must be positive");
        Voxelizer { voxel_size, channels, batch: 0 }
    }

    /// Voxelizes one scan.
    ///
    /// Points with non-finite coordinates are dropped (see
    /// [`Voxelizer::voxelize_counted`] to observe how many); feeding them to
    /// the grid math would otherwise saturate the `as i32` casts and pile
    /// every corrupt point into the `i32::MIN`/`i32::MAX` corner voxels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] from tensor construction (cannot occur for a
    /// well-formed voxel map).
    pub fn voxelize(&self, scan: &PointCloud) -> Result<SparseTensor, CoreError> {
        self.voxelize_counted(scan).map(|(t, _)| t)
    }

    /// [`Voxelizer::voxelize`] that also reports how many points were
    /// dropped for having NaN or infinite coordinates.
    ///
    /// # Errors
    ///
    /// Same as [`Voxelizer::voxelize`].
    pub fn voxelize_counted(&self, scan: &PointCloud) -> Result<(SparseTensor, usize), CoreError> {
        // voxel -> (count, sum_intensity, sum_offset)
        let mut cells: HashMap<Coord, (usize, f32, [f32; 3])> = HashMap::new();
        let mut dropped = 0usize;
        for (p, &intensity) in scan.points.iter().zip(&scan.intensity) {
            if p.iter().any(|v| !v.is_finite()) {
                dropped += 1;
                continue;
            }
            let v = Coord::new(
                self.batch,
                (p[0] / self.voxel_size).floor() as i32,
                (p[1] / self.voxel_size).floor() as i32,
                (p[2] / self.voxel_size).floor() as i32,
            );
            let center = [
                (v.x as f32 + 0.5) * self.voxel_size,
                (v.y as f32 + 0.5) * self.voxel_size,
                (v.z as f32 + 0.5) * self.voxel_size,
            ];
            let entry = cells.entry(v).or_insert((0, 0.0, [0.0; 3]));
            entry.0 += 1;
            entry.1 += intensity;
            for a in 0..3 {
                entry.2[a] += p[a] - center[a];
            }
        }

        // Deterministic ordering.
        let mut coords: Vec<Coord> = cells.keys().copied().collect();
        coords.sort_unstable();

        let feats = Matrix::from_fn(coords.len(), self.channels, |r, c| {
            let (count, sum_i, sum_off) = cells[&coords[r]];
            let n = count as f32;
            match c {
                0 => sum_i / n,
                1..=3 => sum_off[c - 1] / (n * self.voxel_size),
                4 => 1.0, // occupancy constant, a common CenterPoint feature
                _ => 0.0,
            }
        });
        SparseTensor::new(coords, feats).map(|t| (t, dropped))
    }
}

/// Convenience wrapper: voxelizes `scan` at `voxel_size` into `channels`
/// feature channels.
///
/// # Errors
///
/// See [`Voxelizer::voxelize`].
///
/// # Example
///
/// ```
/// use torchsparse_data::{voxelize_scan, LidarConfig};
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let scan = LidarConfig::nuscenes().scaled(0.02).generate(1);
/// let tensor = voxelize_scan(&scan, 0.1, 4)?;
/// assert!(tensor.len() <= scan.len());
/// # Ok(())
/// # }
/// ```
pub fn voxelize_scan(
    scan: &PointCloud,
    voxel_size: f32,
    channels: usize,
) -> Result<SparseTensor, CoreError> {
    Voxelizer::new(voxel_size, channels).voxelize(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LidarConfig;

    fn cloud(points: Vec<[f32; 3]>) -> PointCloud {
        let n = points.len();
        PointCloud { points, intensity: vec![0.5; n] }
    }

    #[test]
    fn points_in_same_voxel_merge() {
        let scan = cloud(vec![[0.01, 0.01, 0.01], [0.04, 0.04, 0.04]]);
        let t = voxelize_scan(&scan, 0.1, 4).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.coords()[0], Coord::new(0, 0, 0, 0));
    }

    #[test]
    fn distinct_voxels_stay_separate() {
        let scan = cloud(vec![[0.05, 0.0, 0.0], [0.15, 0.0, 0.0], [-0.05, 0.0, 0.0]]);
        let t = voxelize_scan(&scan, 0.1, 2).unwrap();
        assert_eq!(t.len(), 3);
        // Negative coordinates floor correctly.
        assert!(t.coords().contains(&Coord::new(0, -1, 0, 0)));
    }

    #[test]
    fn intensity_channel_is_mean() {
        let mut scan = cloud(vec![[0.0, 0.0, 0.0], [0.01, 0.0, 0.0]]);
        scan.intensity = vec![0.2, 0.8];
        let t = voxelize_scan(&scan, 1.0, 1).unwrap();
        assert!((t.feats()[(0, 0)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn offsets_normalized_to_voxel_units() {
        let scan = cloud(vec![[0.9, 0.5, 0.5]]); // voxel center (0.5,0.5,0.5)
        let t = voxelize_scan(&scan, 1.0, 4).unwrap();
        assert!((t.feats()[(0, 1)] - 0.4).abs() < 1e-6);
        assert!(t.feats()[(0, 2)].abs() < 1e-6);
    }

    #[test]
    fn channel_padding_and_truncation() {
        let scan = cloud(vec![[0.0, 0.0, 0.0]]);
        let wide = voxelize_scan(&scan, 1.0, 8).unwrap();
        assert_eq!(wide.channels(), 8);
        assert_eq!(wide.feats()[(0, 7)], 0.0);
        let narrow = voxelize_scan(&scan, 1.0, 1).unwrap();
        assert_eq!(narrow.channels(), 1);
    }

    #[test]
    fn voxelization_unique_and_sorted() {
        let scan = LidarConfig::nuscenes().scaled(0.03).generate(9);
        let t = voxelize_scan(&scan, 0.1, 4).unwrap();
        t.validate_unique().unwrap();
        let mut sorted = t.coords().to_vec();
        sorted.sort_unstable();
        assert_eq!(t.coords(), &sorted[..]);
    }

    #[test]
    fn smaller_voxels_give_more_voxels() {
        let scan = LidarConfig::nuscenes().scaled(0.03).generate(10);
        let coarse = voxelize_scan(&scan, 0.4, 4).unwrap();
        let fine = voxelize_scan(&scan, 0.05, 4).unwrap();
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn non_finite_points_are_dropped_and_counted() {
        let scan = cloud(vec![
            [0.05, 0.05, 0.05],
            [f32::NAN, 0.0, 0.0],
            [0.0, f32::INFINITY, 0.0],
            [0.0, 0.0, f32::NEG_INFINITY],
            [0.15, 0.05, 0.05],
        ]);
        let (t, dropped) = Voxelizer::new(0.1, 4).voxelize_counted(&scan).unwrap();
        assert_eq!(dropped, 3);
        assert_eq!(t.len(), 2);
        // No saturated corner voxels from the corrupt points.
        assert!(t.coords().iter().all(|c| c.x.abs() < 100));
        assert!(t.feats().is_finite());
    }

    #[test]
    fn all_non_finite_scan_yields_empty_tensor() {
        let scan = cloud(vec![[f32::NAN; 3], [f32::INFINITY; 3]]);
        let (t, dropped) = Voxelizer::new(0.1, 4).voxelize_counted(&scan).unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "voxel size must be positive")]
    fn zero_voxel_size_panics() {
        Voxelizer::new(0.0, 4);
    }
}
