use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A raw point cloud: XYZ positions (meters, sensor frame) with per-point
/// intensity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointCloud {
    /// Point positions.
    pub points: Vec<[f32; 3]>,
    /// Return intensities in `[0, 1]`.
    pub intensity: Vec<f32>,
}

impl PointCloud {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// An axis-aligned box obstacle in the procedural scene.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BoxObstacle {
    min: [f32; 3],
    max: [f32; 3],
}

impl BoxObstacle {
    /// Ray/slab intersection; returns the entry distance if the ray hits.
    fn intersect(&self, origin: [f32; 3], dir: [f32; 3]) -> Option<f32> {
        let mut t_near = f32::NEG_INFINITY;
        let mut t_far = f32::INFINITY;
        for a in 0..3 {
            if dir[a].abs() < 1e-9 {
                if origin[a] < self.min[a] || origin[a] > self.max[a] {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / dir[a];
            let mut t0 = (self.min[a] - origin[a]) * inv;
            let mut t1 = (self.max[a] - origin[a]) * inv;
            if t0 > t1 {
                std::mem::swap(&mut t0, &mut t1);
            }
            t_near = t_near.max(t0);
            t_far = t_far.min(t1);
            if t_near > t_far {
                return None;
            }
        }
        if t_near > 0.05 {
            Some(t_near)
        } else {
            None
        }
    }
}

/// A rotating-LiDAR model with a procedural driving scene.
///
/// Rays are cast from a sensor mounted `sensor_height` above the ground
/// over `beams` elevation angles and `azimuth_steps` horizontal directions.
/// Each ray hits the nearest of: the ground plane, or one of
/// `num_obstacles` procedurally placed boxes (cars / walls / poles). Range
/// limits, per-ray dropout, and radial noise shape the return statistics.
///
/// # Example
///
/// ```
/// use torchsparse_data::LidarConfig;
///
/// let scan = LidarConfig::nuscenes().scaled(0.05).generate(7);
/// assert!(scan.len() > 50);
/// assert_eq!(scan.points.len(), scan.intensity.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LidarConfig {
    /// Number of laser beams (vertical channels).
    pub beams: usize,
    /// Azimuth samples per revolution.
    pub azimuth_steps: usize,
    /// Lowest beam elevation in degrees (negative = downward).
    pub elevation_min_deg: f32,
    /// Highest beam elevation in degrees.
    pub elevation_max_deg: f32,
    /// Maximum return range in meters.
    pub max_range: f32,
    /// Minimum return range in meters.
    pub min_range: f32,
    /// Probability that a ray produces no return.
    pub dropout: f32,
    /// Standard deviation of radial range noise in meters.
    pub range_noise: f32,
    /// Number of box obstacles in the scene.
    pub num_obstacles: usize,
    /// Half-extent of the obstacle field in meters.
    pub scene_extent: f32,
    /// Sensor height above ground in meters.
    pub sensor_height: f32,
}

impl LidarConfig {
    /// Velodyne HDL-64E-like configuration (SemanticKITTI): ~115k rays,
    /// ~100k returns.
    pub fn semantic_kitti() -> LidarConfig {
        LidarConfig {
            beams: 64,
            azimuth_steps: 1800,
            elevation_min_deg: -24.8,
            elevation_max_deg: 2.0,
            max_range: 80.0,
            min_range: 2.0,
            dropout: 0.08,
            range_noise: 0.03,
            num_obstacles: 60,
            scene_extent: 60.0,
            sensor_height: 1.73,
        }
    }

    /// nuScenes' 32-beam sensor: far sparser scans (~30k returns).
    pub fn nuscenes() -> LidarConfig {
        LidarConfig {
            beams: 32,
            azimuth_steps: 1090,
            elevation_min_deg: -30.0,
            elevation_max_deg: 10.0,
            max_range: 70.0,
            min_range: 1.0,
            dropout: 0.12,
            range_noise: 0.03,
            num_obstacles: 45,
            scene_extent: 55.0,
            sensor_height: 1.84,
        }
    }

    /// Waymo's dense mid-range sensor (~160k returns): the heaviest
    /// workload in the paper's detection benchmarks.
    pub fn waymo() -> LidarConfig {
        LidarConfig {
            beams: 64,
            azimuth_steps: 2650,
            elevation_min_deg: -17.6,
            elevation_max_deg: 2.4,
            max_range: 75.0,
            min_range: 1.5,
            dropout: 0.05,
            range_noise: 0.015,
            num_obstacles: 80,
            scene_extent: 55.0,
            sensor_height: 2.0,
        }
    }

    /// Returns a configuration with the ray count scaled by `scale`
    /// (applied as `sqrt(scale)` to both beams and azimuth steps so the
    /// angular sampling stays isotropic). Useful for fast tests and scaled
    /// benchmark runs.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> LidarConfig {
        let f = scale.max(1e-6).sqrt();
        self.beams = ((self.beams as f64 * f).round() as usize).max(4);
        self.azimuth_steps = ((self.azimuth_steps as f64 * f).round() as usize).max(16);
        self
    }

    /// Total rays per revolution.
    pub fn rays(&self) -> usize {
        self.beams * self.azimuth_steps
    }

    /// Generates one deterministic scan.
    pub fn generate(&self, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let obstacles = self.build_scene(&mut rng);
        let origin = [0.0, 0.0, self.sensor_height];

        let mut cloud = PointCloud::default();
        for b in 0..self.beams {
            let frac = if self.beams > 1 { b as f32 / (self.beams - 1) as f32 } else { 0.5 };
            let elev_deg =
                self.elevation_min_deg + frac * (self.elevation_max_deg - self.elevation_min_deg);
            let elev = elev_deg.to_radians();
            let (sin_e, cos_e) = elev.sin_cos();
            for a in 0..self.azimuth_steps {
                if rng.random::<f32>() < self.dropout {
                    continue;
                }
                let az = a as f32 / self.azimuth_steps as f32 * std::f32::consts::TAU;
                let (sin_a, cos_a) = az.sin_cos();
                let dir = [cos_e * cos_a, cos_e * sin_a, sin_e];

                // Nearest hit among ground and obstacles.
                let mut t_hit = f32::INFINITY;
                if dir[2] < -1e-6 {
                    let t_ground = -origin[2] / dir[2];
                    t_hit = t_hit.min(t_ground);
                }
                for ob in &obstacles {
                    if let Some(t) = ob.intersect(origin, dir) {
                        t_hit = t_hit.min(t);
                    }
                }
                if !t_hit.is_finite() || t_hit < self.min_range || t_hit > self.max_range {
                    continue;
                }
                let t = t_hit + rng.random_range(-1.0f32..1.0) * self.range_noise;
                let p = [origin[0] + dir[0] * t, origin[1] + dir[1] * t, origin[2] + dir[2] * t];
                // Intensity falls off with range, with per-return jitter.
                let intensity =
                    ((1.0 - t / self.max_range) * 0.8 + rng.random::<f32>() * 0.2).clamp(0.0, 1.0);
                cloud.points.push(p);
                cloud.intensity.push(intensity);
            }
        }
        cloud
    }

    fn build_scene(&self, rng: &mut StdRng) -> Vec<BoxObstacle> {
        let mut boxes = Vec::with_capacity(self.num_obstacles);
        for i in 0..self.num_obstacles {
            let cx = rng.random_range(-self.scene_extent..self.scene_extent);
            let cy = rng.random_range(-self.scene_extent..self.scene_extent);
            // Mix of car-sized boxes, poles, and building walls.
            let (hx, hy, hz) = match i % 5 {
                0 | 1 => (1.0 + rng.random::<f32>(), 2.0 + rng.random::<f32>(), 1.5), // cars
                2 => (0.2, 0.2, 4.0 + 2.0 * rng.random::<f32>()),                     // poles
                3 => (4.0 + 4.0 * rng.random::<f32>(), 1.0, 3.5),                     // walls
                _ => (1.5, 1.5, 2.0 + rng.random::<f32>()),                           // misc
            };
            boxes.push(BoxObstacle { min: [cx - hx, cy - hy, 0.0], max: [cx + hx, cy + hy, hz] });
        }
        boxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = LidarConfig::nuscenes().scaled(0.02);
        assert_eq!(cfg.generate(5), cfg.generate(5));
        assert_ne!(cfg.generate(5), cfg.generate(6));
    }

    #[test]
    fn full_scale_point_counts_match_dataset_statistics() {
        // Full-scale generation is slow-ish; run once per preset and check
        // the return counts land in each dataset's documented band.
        let sk = LidarConfig::semantic_kitti().generate(0);
        assert!(
            (70_000..130_000).contains(&sk.len()),
            "SemanticKITTI-like scan has {} returns",
            sk.len()
        );
        let ns = LidarConfig::nuscenes().generate(0);
        assert!((15_000..45_000).contains(&ns.len()), "nuScenes-like scan has {}", ns.len());
        let wm = LidarConfig::waymo().generate(0);
        assert!((120_000..200_000).contains(&wm.len()), "Waymo-like scan has {}", wm.len());
        assert!(wm.len() > sk.len());
        assert!(sk.len() > ns.len());
    }

    #[test]
    fn points_respect_range_limits() {
        let cfg = LidarConfig::semantic_kitti().scaled(0.02);
        let scan = cfg.generate(1);
        for p in &scan.points {
            let r = (p[0] * p[0] + p[1] * p[1] + (p[2] - cfg.sensor_height).powi(2)).sqrt();
            assert!(r >= cfg.min_range - 0.2, "return at {r} below min range");
            assert!(r <= cfg.max_range + 0.2, "return at {r} beyond max range");
        }
    }

    #[test]
    fn ground_returns_lie_near_zero_height() {
        let mut cfg = LidarConfig::semantic_kitti().scaled(0.05);
        cfg.num_obstacles = 0;
        let scan = cfg.generate(2);
        assert!(!scan.is_empty());
        for p in &scan.points {
            assert!(p[2].abs() < 0.5, "pure-ground scene return at z={}", p[2]);
        }
    }

    #[test]
    fn obstacles_create_elevated_returns() {
        let cfg = LidarConfig::waymo().scaled(0.1);
        let scan = cfg.generate(3);
        let elevated = scan.points.iter().filter(|p| p[2] > 0.5).count();
        assert!(elevated > 0, "box obstacles must produce elevated returns");
    }

    #[test]
    fn dropout_reduces_returns() {
        let mut low = LidarConfig::nuscenes().scaled(0.05);
        low.dropout = 0.0;
        let mut high = low.clone();
        high.dropout = 0.5;
        assert!(high.generate(4).len() < low.generate(4).len());
    }

    #[test]
    fn intensity_in_unit_range() {
        let scan = LidarConfig::nuscenes().scaled(0.05).generate(5);
        assert!(scan.intensity.iter().all(|&i| (0.0..=1.0).contains(&i)));
    }

    #[test]
    fn box_intersection_basics() {
        let b = BoxObstacle { min: [5.0, -1.0, 0.0], max: [7.0, 1.0, 2.0] };
        // Ray straight along +x hits the near face at t=5.
        let t = b.intersect([0.0, 0.0, 1.0], [1.0, 0.0, 0.0]).unwrap();
        assert!((t - 5.0).abs() < 1e-5);
        // Ray pointing away misses.
        assert!(b.intersect([0.0, 0.0, 1.0], [-1.0, 0.0, 0.0]).is_none());
        // Ray offset in y misses.
        assert!(b.intersect([0.0, 5.0, 1.0], [1.0, 0.0, 0.0]).is_none());
    }
}
