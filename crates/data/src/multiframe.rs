use crate::PointCloud;

/// Aggregates consecutive LiDAR sweeps into one cloud, compensating ego
/// motion.
///
/// Detection models on nuScenes and Waymo fuse multiple sweeps (the paper
/// benchmarks 1/3/10-frame variants) to densify the input. Frame `i`
/// (0 = newest) is shifted backwards along the ego trajectory by
/// `i * frame_displacement` meters along x before merging, which reproduces
/// the real effect: the aggregated cloud is denser *and* slightly smeared
/// along the direction of travel.
///
/// # Example
///
/// ```
/// use torchsparse_data::{aggregate_frames, LidarConfig};
///
/// let cfg = LidarConfig::nuscenes().scaled(0.02);
/// let frames = vec![cfg.generate(0), cfg.generate(1), cfg.generate(2)];
/// let merged = aggregate_frames(&frames, 0.5);
/// assert_eq!(merged.len(), frames.iter().map(|f| f.len()).sum::<usize>());
/// ```
pub fn aggregate_frames(frames: &[PointCloud], frame_displacement: f32) -> PointCloud {
    let mut merged = PointCloud::default();
    for (i, frame) in frames.iter().enumerate() {
        let shift = i as f32 * frame_displacement;
        for (p, &intensity) in frame.points.iter().zip(&frame.intensity) {
            merged.points.push([p[0] - shift, p[1], p[2]]);
            merged.intensity.push(intensity);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LidarConfig;

    #[test]
    fn empty_input_gives_empty_cloud() {
        assert!(aggregate_frames(&[], 0.5).is_empty());
    }

    #[test]
    fn single_frame_with_zero_shift_is_identity() {
        let cfg = LidarConfig::nuscenes().scaled(0.02);
        let f = cfg.generate(0);
        let merged = aggregate_frames(std::slice::from_ref(&f), 0.5);
        assert_eq!(merged, f);
    }

    #[test]
    fn frames_are_shifted_by_index() {
        let f = PointCloud { points: vec![[1.0, 2.0, 3.0]], intensity: vec![0.5] };
        let merged = aggregate_frames(&[f.clone(), f.clone(), f], 0.5);
        assert_eq!(merged.points[0], [1.0, 2.0, 3.0]);
        assert_eq!(merged.points[1], [0.5, 2.0, 3.0]);
        assert_eq!(merged.points[2], [0.0, 2.0, 3.0]);
    }

    #[test]
    fn counts_add_up() {
        let cfg = LidarConfig::waymo().scaled(0.02);
        let frames: Vec<PointCloud> = (0..3).map(|i| cfg.generate(i)).collect();
        let total: usize = frames.iter().map(PointCloud::len).sum();
        assert_eq!(aggregate_frames(&frames, 0.4).len(), total);
    }
}
