//! Synthetic LiDAR datasets mimicking the statistics of SemanticKITTI,
//! nuScenes, and the Waymo Open Dataset.
//!
//! The paper's experiments run on real autonomous-driving scans, which we
//! cannot redistribute. What the paper's *system* results actually depend
//! on, however, is the workload geometry: how many points a scan has, how
//! they cluster (dense rings near the ego vehicle, sparse at range), and how
//! voxel occupancy decays with distance — these determine the per-offset
//! map-size distributions (Figure 12) that drive every optimization. This
//! crate therefore implements a physically-motivated rotating-LiDAR
//! simulator:
//!
//! - [`LidarConfig`]: beam/azimuth geometry with presets per dataset
//!   ([`LidarConfig::semantic_kitti`] 64-beam ~100k pts,
//!   [`LidarConfig::nuscenes`] 32-beam ~30k pts,
//!   [`LidarConfig::waymo`] dense 64-beam ~160k pts).
//! - Ray casting against a procedurally generated scene (ground plane +
//!   box obstacles) with range limits, dropout, and noise.
//! - [`voxelize_scan`] / [`Voxelizer`]: quantization into a
//!   [`SparseTensor`], deduplicating points per voxel.
//! - [`aggregate_frames`]: multi-frame fusion with ego motion (the 1/3/10
//!   frame settings of the paper's nuScenes and Waymo benchmarks).
//! - [`poisson_arrivals`]: deterministic Poisson arrival schedules for
//!   multi-stream serving benchmarks.
//! - [`geometry_static_stream`]: replayed frame streams with identical
//!   coordinates and jittered features, the steady-state workload for
//!   compiled inference sessions.
//! - [`temporal_churn_stream`] / [`ego_drift_stream`] /
//!   [`dynamic_actors_stream`] / [`multi_sweep_stream`]: temporally
//!   *churning* streams whose geometry changes a controlled few percent per
//!   frame — the workload incremental delta re-planning amortizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod lidar;
mod multiframe;
mod stream;
mod temporal;
mod voxelize;

pub use batch::collate;
pub use lidar::{LidarConfig, PointCloud};
pub use multiframe::aggregate_frames;
pub use stream::{geometry_static_stream, poisson_arrivals};
pub use temporal::{
    dynamic_actors_stream, ego_drift_stream, multi_sweep_stream, temporal_churn_stream,
};
pub use voxelize::{voxelize_scan, Voxelizer};

/// A ready-made (generator, voxelizer) pair representing one benchmark
/// dataset at a chosen scale.
///
/// # Example
///
/// ```
/// use torchsparse_data::SyntheticDataset;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let ds = SyntheticDataset::semantic_kitti(0.05, 4);
/// let scene = ds.scene(0)?;
/// assert!(scene.len() > 100);
/// assert_eq!(scene.channels(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The LiDAR model generating raw scans.
    pub lidar: LidarConfig,
    /// Voxel edge length in meters.
    pub voxel_size: f32,
    /// Feature channels per voxel.
    pub channels: usize,
    /// Number of aggregated frames per scene.
    pub frames: usize,
    /// Short dataset label used in experiment printouts.
    pub name: String,
}

impl SyntheticDataset {
    /// SemanticKITTI-like segmentation data at `scale` of full size.
    pub fn semantic_kitti(scale: f64, channels: usize) -> SyntheticDataset {
        SyntheticDataset {
            lidar: LidarConfig::semantic_kitti().scaled(scale),
            voxel_size: 0.05,
            channels,
            frames: 1,
            name: "SemanticKITTI".to_owned(),
        }
    }

    /// nuScenes-LiDARSeg-like data (32 beams, much sparser) with `frames`
    /// aggregated sweeps.
    pub fn nuscenes(scale: f64, channels: usize, frames: usize) -> SyntheticDataset {
        SyntheticDataset {
            lidar: LidarConfig::nuscenes().scaled(scale),
            voxel_size: 0.1,
            channels,
            frames,
            name: format!("nuScenes ({frames}f)"),
        }
    }

    /// Waymo-like detection data (dense 64-beam) with `frames` sweeps.
    pub fn waymo(scale: f64, channels: usize, frames: usize) -> SyntheticDataset {
        SyntheticDataset {
            lidar: LidarConfig::waymo().scaled(scale),
            voxel_size: 0.1,
            channels,
            frames,
            name: format!("Waymo ({frames}f)"),
        }
    }

    /// Generates the scene with the given index (fully deterministic).
    ///
    /// # Errors
    ///
    /// Propagates [`torchsparse_core::CoreError`] from tensor construction
    /// (cannot occur for non-degenerate configurations).
    pub fn scene(
        &self,
        index: u64,
    ) -> Result<torchsparse_core::SparseTensor, torchsparse_core::CoreError> {
        if self.frames <= 1 {
            let scan = self.lidar.generate(index);
            voxelize_scan(&scan, self.voxel_size, self.channels)
        } else {
            let scans: Vec<PointCloud> =
                (0..self.frames).map(|f| self.lidar.generate(index * 1000 + f as u64)).collect();
            let merged = aggregate_frames(&scans, 0.5);
            voxelize_scan(&merged, self.voxel_size, self.channels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_scene_is_deterministic() {
        let ds = SyntheticDataset::nuscenes(0.05, 4, 1);
        let a = ds.scene(3).unwrap();
        let b = ds.scene(3).unwrap();
        assert_eq!(a, b);
        let c = ds.scene(4).unwrap();
        assert_ne!(a.coords(), c.coords());
    }

    #[test]
    fn nuscenes_sparser_than_kitti() {
        // The key dataset property behind Figure 12 / Table 1a.
        let sk = SyntheticDataset::semantic_kitti(0.05, 4).scene(0).unwrap();
        let ns = SyntheticDataset::nuscenes(0.05, 4, 1).scene(0).unwrap();
        assert!(
            sk.len() > 2 * ns.len(),
            "SemanticKITTI ({}) should be much denser than nuScenes ({})",
            sk.len(),
            ns.len()
        );
    }

    #[test]
    fn multiframe_increases_density() {
        let one = SyntheticDataset::waymo(0.03, 4, 1).scene(0).unwrap();
        let three = SyntheticDataset::waymo(0.03, 4, 3).scene(0).unwrap();
        assert!(three.len() > one.len());
    }

    #[test]
    fn scenes_have_unique_coords() {
        let ds = SyntheticDataset::semantic_kitti(0.03, 4);
        ds.scene(1).unwrap().validate_unique().unwrap();
    }
}
