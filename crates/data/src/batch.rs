//! Mini-batch collation: merge several scenes into one sparse tensor with
//! distinct batch indices — the sparse-tensor equivalent of
//! `torch.utils.data.default_collate`.

use torchsparse_coords::Coord;
use torchsparse_core::{CoreError, SparseTensor};
use torchsparse_tensor::Matrix;

/// Collates single-scene tensors into one batched tensor.
///
/// Scene `i`'s coordinates receive batch index `i`; features are stacked in
/// order. All scenes must share the channel count and tensor stride.
///
/// # Errors
///
/// - [`CoreError::EmptyInput`] if `scenes` is empty;
/// - [`CoreError::ChannelMismatch`] if channel counts differ;
/// - [`CoreError::Coords`] if strides differ.
///
/// # Example
///
/// ```
/// use torchsparse_data::{collate, SyntheticDataset};
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let ds = SyntheticDataset::nuscenes(0.02, 4, 1);
/// let batch = collate(&[ds.scene(0)?, ds.scene(1)?])?;
/// assert_eq!(batch.coords().iter().map(|c| c.batch).max(), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn collate(scenes: &[SparseTensor]) -> Result<SparseTensor, CoreError> {
    let first = scenes.first().ok_or(CoreError::EmptyInput)?;
    let channels = first.channels();
    let stride = first.stride();
    let mut coords = Vec::new();
    let mut feat_blocks = Vec::new();
    for (b, scene) in scenes.iter().enumerate() {
        if scene.channels() != channels {
            return Err(CoreError::ChannelMismatch {
                expected: channels,
                actual: scene.channels(),
            });
        }
        if scene.stride() != stride {
            return Err(CoreError::Coords(torchsparse_coords::CoordsError::ZeroStride));
        }
        coords.extend(scene.coords().iter().map(|c| Coord::new(b as i32, c.x, c.y, c.z)));
        feat_blocks.push(scene.feats());
    }
    let feats = Matrix::vstack(&feat_blocks).map_err(CoreError::from)?;
    SparseTensor::with_stride(coords, feats, stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticDataset;
    use torchsparse_core::DeviceProfile;
    use torchsparse_core::{Engine, EnginePreset, Module};

    #[test]
    fn collate_assigns_batch_indices() {
        let ds = SyntheticDataset::nuscenes(0.02, 4, 1);
        let a = ds.scene(0).unwrap();
        let b = ds.scene(1).unwrap();
        let batch = collate(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(batch.len(), a.len() + b.len());
        assert!(batch.coords()[..a.len()].iter().all(|c| c.batch == 0));
        assert!(batch.coords()[a.len()..].iter().all(|c| c.batch == 1));
        batch.validate_unique().unwrap();
    }

    #[test]
    fn collate_rejects_empty_and_mismatched() {
        assert!(matches!(collate(&[]), Err(CoreError::EmptyInput)));
        let ds4 = SyntheticDataset::nuscenes(0.02, 4, 1);
        let ds5 = SyntheticDataset::nuscenes(0.02, 5, 1);
        let err = collate(&[ds4.scene(0).unwrap(), ds5.scene(0).unwrap()]).unwrap_err();
        assert!(matches!(err, CoreError::ChannelMismatch { .. }));
    }

    #[test]
    fn batched_inference_equals_per_scene_inference() {
        // Scenes in a batch must not interact: running them together gives
        // the same features as running them alone.
        let ds = SyntheticDataset::nuscenes(0.015, 4, 1);
        let a = ds.scene(3).unwrap();
        let b = ds.scene(4).unwrap();
        let batch = collate(&[a.clone(), b.clone()]).unwrap();

        let conv = torchsparse_core::SparseConv3d::with_random_weights("c", 4, 6, 3, 1, 9);
        let mut engine = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());

        let ya = engine.run(&conv, &a).unwrap();
        let yb = engine.run(&conv, &b).unwrap();
        let ybatch = engine.run(&conv, &batch).unwrap();

        // Batched coordinates preserve scene order.
        for (i, c) in ybatch.coords().iter().enumerate() {
            let (reference, idx) = if i < a.len() { (&ya, i) } else { (&yb, i - a.len()) };
            assert_eq!(c.xyz(), reference.coords()[idx].xyz());
            for ch in 0..6 {
                let diff = (ybatch.feats()[(i, ch)] - reference.feats()[(idx, ch)]).abs();
                assert!(diff < 1e-4, "batch isolation violated at point {i} channel {ch}");
            }
        }
        let _ = conv.name();
    }
}
