//! Temporally *churning* frame streams: the workload incremental delta
//! re-planning amortizes.
//!
//! Real LiDAR streams are neither geometry-static (every frame identical,
//! [`geometry_static_stream`](crate::geometry_static_stream)) nor fully
//! independent scans: ego motion slides a few percent of voxels across
//! grid-cell boundaries per frame, dynamic actors carve moving holes and
//! bumps into an otherwise static background, and multi-sweep aggregation
//! windows swap one sweep's voxels in and one out per frame. Each generator
//! here synthesizes one of those regimes deterministically, with frame 0
//! always exactly the supplied base tensor so a compiled session plans
//! against it and subsequent frames exercise the delta re-plan path at a
//! controlled churn rate.
//!
//! Feature values are stable per coordinate (kept voxels carry their
//! features forward; inserted voxels derive theirs from the coordinate
//! hash), so every frame sequence is bit-reproducible in its seed and
//! identical regardless of how the consumer plans it.

use std::collections::HashMap;
use torchsparse_coords::Coord;
use torchsparse_core::{CoreError, SparseTensor};
use torchsparse_tensor::Matrix;

use crate::stream::splitmix64;

/// Tracks the feature row each live coordinate carries across frames.
struct FeatureBank {
    rows: HashMap<Coord, Vec<f32>>,
    channels: usize,
}

impl FeatureBank {
    fn from_base(base: &SparseTensor) -> FeatureBank {
        let mut rows = HashMap::with_capacity(base.len());
        for (i, &c) in base.coords().iter().enumerate() {
            rows.insert(c, base.feats().row(i).to_vec());
        }
        FeatureBank { rows, channels: base.channels() }
    }

    /// The row for `c`: carried forward when the coordinate has been seen,
    /// derived from its hash when freshly inserted.
    fn row(&mut self, c: Coord) -> Vec<f32> {
        let channels = self.channels;
        self.rows
            .entry(c)
            .or_insert_with(|| {
                let mut state = c.fnv1a();
                (0..channels)
                    .map(|_| {
                        let u = (splitmix64(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
                        2.0 * u - 1.0
                    })
                    .collect()
            })
            .clone()
    }

    fn tensor(&mut self, coords: Vec<Coord>, stride: i32) -> Result<SparseTensor, CoreError> {
        let n = coords.len();
        let mut feats = Matrix::zeros(n, self.channels);
        for (i, &c) in coords.iter().enumerate() {
            feats.row_mut(i).copy_from_slice(&self.row(c));
        }
        SparseTensor::with_stride(coords, feats, stride)
    }
}

/// Picks a previously unseen coordinate adjacent to `anchor`, retrying a
/// few jittered offsets before giving up.
fn neighbor_insert(
    anchor: Coord,
    occupied: &HashMap<Coord, u32>,
    state: &mut u64,
) -> Option<Coord> {
    for _ in 0..8 {
        let r = splitmix64(state);
        let dx = (r & 3) as i32 - 1;
        let dy = ((r >> 2) & 3) as i32 - 1;
        let dz = ((r >> 4) & 3) as i32 - 1;
        if dx == 0 && dy == 0 && dz == 0 {
            continue;
        }
        let c = anchor.offset([dx, dy, dz]);
        if !occupied.contains_key(&c) {
            return Some(c);
        }
    }
    None
}

/// A stream of `frames` tensors whose geometry churns by approximately
/// `churn` (fraction of voxels inserted + removed, relative to the scene
/// size) from one frame to the next: half the budget removes existing
/// voxels, half inserts fresh voxels adjacent to survivors. Frame 0 is
/// `base` unchanged. Kept voxels keep their features; the stream is
/// deterministic in `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: frames keep
/// `base`'s channel count and coordinates stay unique by construction).
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseTensor;
/// use torchsparse_coords::Coord;
/// use torchsparse_data::temporal_churn_stream;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let coords: Vec<Coord> = (0..40).map(|i| Coord::new(0, i, i % 5, 0)).collect();
/// let base = SparseTensor::new(coords, Matrix::filled(40, 4, 1.0))?;
/// let frames = temporal_churn_stream(&base, 4, 0.10, 7)?;
/// assert_eq!(frames[0], base);
/// assert_ne!(frames[1].coords(), base.coords());
/// # Ok(())
/// # }
/// ```
pub fn temporal_churn_stream(
    base: &SparseTensor,
    frames: usize,
    churn: f64,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let mut bank = FeatureBank::from_base(base);
    let mut out = Vec::with_capacity(frames);
    let mut cur: Vec<Coord> = base.coords().to_vec();
    let mut state = seed ^ 0x7E17_ACE5u64.rotate_left(17);
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let occupied: HashMap<Coord, u32> =
            cur.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
        let budget = ((churn * cur.len() as f64) / 2.0).round() as usize;
        // Removals: a deterministic sample of current rows.
        let mut drop = vec![false; cur.len()];
        let mut dropped = 0usize;
        while dropped < budget.min(cur.len().saturating_sub(1)) {
            let i = (splitmix64(&mut state) % cur.len() as u64) as usize;
            if !drop[i] {
                drop[i] = true;
                dropped += 1;
            }
        }
        let mut next: Vec<Coord> =
            cur.iter().zip(&drop).filter(|(_, &d)| !d).map(|(&c, _)| c).collect();
        // Insertions: fresh voxels adjacent to survivors.
        let mut inserted = 0usize;
        let mut occupied = occupied;
        while inserted < budget && !next.is_empty() {
            let anchor = next[(splitmix64(&mut state) % next.len() as u64) as usize];
            match neighbor_insert(anchor, &occupied, &mut state) {
                Some(c) => {
                    occupied.insert(c, u32::MAX);
                    next.push(c);
                    inserted += 1;
                }
                None => break,
            }
        }
        out.push(bank.tensor(next.clone(), base.stride())?);
        cur = next;
    }
    Ok(out)
}

/// Ego-motion drift: per frame, roughly `crossing_fraction` of the voxels
/// cross a grid-cell boundary (modeled as a +1 step along x), while the
/// rest of the grid stays put — the steady-state geometry churn of a
/// vehicle moving slowly relative to the voxel size. A voxel whose target
/// cell is already occupied stays where it is (the cells merge). Frame 0 is
/// `base` unchanged; deterministic in `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: coordinates stay
/// unique by construction).
pub fn ego_drift_stream(
    base: &SparseTensor,
    frames: usize,
    crossing_fraction: f64,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let threshold = (crossing_fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u64;
    let mut bank = FeatureBank::from_base(base);
    let mut out = Vec::with_capacity(frames);
    let mut cur: Vec<Coord> = base.coords().to_vec();
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let occupied: HashMap<Coord, u32> =
            cur.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
        let mut next: Vec<Coord> = Vec::with_capacity(cur.len());
        let mut claimed: HashMap<Coord, u32> = HashMap::with_capacity(cur.len());
        for &c in &cur {
            let mut state = seed ^ c.fnv1a() ^ (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let crosses = (splitmix64(&mut state) & u64::from(u32::MAX)) < threshold;
            let target = if crosses { c.offset([1, 0, 0]) } else { c };
            // Collisions (target occupied or already claimed this frame)
            // leave the voxel in place; a double-claim drops it (merged).
            let dest =
                if crosses && (occupied.contains_key(&target) || claimed.contains_key(&target)) {
                    c
                } else {
                    target
                };
            if claimed.insert(dest, 0).is_none() {
                next.push(dest);
            }
        }
        out.push(bank.tensor(next.clone(), base.stride())?);
        cur = next;
    }
    Ok(out)
}

/// Dynamic actors over a static background: `actors` cubes of edge
/// `extent` voxels traverse the scene with constant per-frame velocity,
/// inserting their voxels into `base`'s static background and removing
/// them as they move on. Background voxels are never removed; churn comes
/// entirely from the moving actor surfaces. Frame 0 is `base` unchanged;
/// deterministic in `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: coordinates stay
/// unique by construction).
pub fn dynamic_actors_stream(
    base: &SparseTensor,
    frames: usize,
    actors: usize,
    extent: i32,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let extent = extent.max(1);
    let (lo, hi) = bounding_box(base.coords());
    let mut bank = FeatureBank::from_base(base);
    let background: HashMap<Coord, u32> =
        base.coords().iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();

    // Fixed per-actor origin and velocity, derived once from the seed.
    let mut state = seed ^ 0xD1A_C705u64.rotate_left(29);
    let specs: Vec<([i32; 3], [i32; 3], i32)> = (0..actors)
        .map(|_| {
            let span =
                |a: i32, b: i32, s: &mut u64| a + (splitmix64(s) % (b - a).max(1) as u64) as i32;
            let origin = [
                span(lo[0], hi[0], &mut state),
                span(lo[1], hi[1], &mut state),
                span(lo[2], hi[2], &mut state),
            ];
            let vel = [
                (splitmix64(&mut state) % 3) as i32 - 1,
                (splitmix64(&mut state) % 3) as i32 - 1,
                1, // always some motion so the actor churns every frame
            ];
            let batch = base.coords().first().map_or(0, |c| c.batch);
            (origin, vel, batch)
        })
        .collect();

    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let mut coords = base.coords().to_vec();
        let mut claimed: HashMap<Coord, u32> = HashMap::with_capacity(actors * extent as usize);
        for &(origin, vel, batch) in &specs {
            let p = [
                origin[0] + vel[0] * f as i32,
                origin[1] + vel[1] * f as i32,
                origin[2] + vel[2] * f as i32,
            ];
            for dx in 0..extent {
                for dy in 0..extent {
                    for dz in 0..extent {
                        let c = Coord::new(batch, p[0] + dx, p[1] + dy, p[2] + dz);
                        if !background.contains_key(&c) && claimed.insert(c, 0).is_none() {
                            coords.push(c);
                        }
                    }
                }
            }
        }
        out.push(bank.tensor(coords, base.stride())?);
    }
    Ok(out)
}

/// Multi-sweep aggregation with a sliding window: frame `f > 0` is `base`
/// (the persistent map) plus the `window` most recent synthetic sweeps,
/// each contributing `sweep_points` voxels scattered over `base`'s
/// bounding box. Advancing one frame swaps the oldest sweep's voxels out
/// and a fresh sweep's in — the classic aggregation churn of nuScenes /
/// Waymo multi-sweep inputs. Frame 0 is `base` unchanged; deterministic in
/// `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: coordinates stay
/// unique by construction).
pub fn multi_sweep_stream(
    base: &SparseTensor,
    frames: usize,
    window: usize,
    sweep_points: usize,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let window = window.max(1);
    let (lo, hi) = bounding_box(base.coords());
    let batch = base.coords().first().map_or(0, |c| c.batch);
    let mut bank = FeatureBank::from_base(base);
    let background: HashMap<Coord, u32> =
        base.coords().iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();

    // Sweep `s` is a fixed voxel set derived from (seed, s).
    let sweep = |s: usize| -> Vec<Coord> {
        let mut state = seed ^ (s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut pts = Vec::with_capacity(sweep_points);
        for _ in 0..sweep_points {
            let span =
                |a: i32, b: i32, st: &mut u64| a + (splitmix64(st) % (b - a).max(1) as u64) as i32;
            pts.push(Coord::new(
                batch,
                span(lo[0], hi[0] + 2, &mut state),
                span(lo[1], hi[1] + 2, &mut state),
                span(lo[2], hi[2] + 2, &mut state),
            ));
        }
        pts
    };

    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let mut coords = base.coords().to_vec();
        let mut claimed: HashMap<Coord, u32> = HashMap::new();
        let first = f.saturating_sub(window - 1).max(1);
        for s in first..=f {
            for c in sweep(s) {
                if !background.contains_key(&c) && claimed.insert(c, 0).is_none() {
                    coords.push(c);
                }
            }
        }
        out.push(bank.tensor(coords, base.stride())?);
    }
    Ok(out)
}

fn bounding_box(coords: &[Coord]) -> ([i32; 3], [i32; 3]) {
    let mut lo = [i32::MAX; 3];
    let mut hi = [i32::MIN; 3];
    for c in coords {
        for (d, v) in [c.x, c.y, c.z].into_iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SparseTensor {
        let coords: Vec<Coord> = (0..60)
            .map(|i| Coord::new(0, i % 10, (i / 10) % 6, i % 4))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| (r * 7 + c) as f32 * 0.01)).unwrap()
    }

    fn churn_between(a: &SparseTensor, b: &SparseTensor) -> f64 {
        let sa: std::collections::HashSet<_> = a.coords().iter().collect();
        let sb: std::collections::HashSet<_> = b.coords().iter().collect();
        let inserted = sb.difference(&sa).count();
        let removed = sa.difference(&sb).count();
        (inserted + removed) as f64 / sa.len().max(sb.len()) as f64
    }

    #[test]
    fn churn_stream_hits_requested_rate() {
        let b = base();
        let frames = temporal_churn_stream(&b, 5, 0.10, 3).unwrap();
        assert_eq!(frames[0], b);
        for w in frames.windows(2).skip(1) {
            let c = churn_between(&w[0], &w[1]);
            assert!((0.02..=0.20).contains(&c), "churn {c} should track the requested 10%");
        }
        for f in &frames {
            f.validate_unique().unwrap();
        }
    }

    #[test]
    fn churn_stream_is_deterministic() {
        let b = base();
        assert_eq!(
            temporal_churn_stream(&b, 4, 0.08, 9).unwrap(),
            temporal_churn_stream(&b, 4, 0.08, 9).unwrap()
        );
    }

    #[test]
    fn kept_voxels_keep_features() {
        let b = base();
        let frames = temporal_churn_stream(&b, 3, 0.10, 5).unwrap();
        let lookup: HashMap<Coord, Vec<f32>> =
            b.coords().iter().enumerate().map(|(i, &c)| (c, b.feats().row(i).to_vec())).collect();
        let f = &frames[2];
        let mut checked = 0;
        for (i, c) in f.coords().iter().enumerate() {
            if let Some(expected) = lookup.get(c) {
                assert_eq!(f.feats().row(i), &expected[..]);
                checked += 1;
            }
        }
        assert!(checked > 0, "some base voxels must survive 10% churn");
    }

    #[test]
    fn ego_drift_crosses_a_fraction() {
        let b = base();
        let frames = ego_drift_stream(&b, 3, 0.10, 11).unwrap();
        assert_eq!(frames[0], b);
        let c = churn_between(&frames[0], &frames[1]);
        assert!(c > 0.0 && c < 0.35, "drift churn {c} should be small");
        for f in &frames {
            f.validate_unique().unwrap();
        }
    }

    #[test]
    fn dynamic_actors_insert_and_move() {
        let b = base();
        let frames = dynamic_actors_stream(&b, 4, 2, 2, 17).unwrap();
        assert_eq!(frames[0], b);
        assert!(frames[1].len() > b.len(), "actors add voxels over the background");
        // The actors move: consecutive frames differ.
        assert_ne!(frames[1].coords(), frames[2].coords());
        for f in &frames {
            f.validate_unique().unwrap();
            // The static background survives every frame.
            let occupied: std::collections::HashSet<_> = f.coords().iter().collect();
            assert!(b.coords().iter().all(|c| occupied.contains(c)));
        }
    }

    #[test]
    fn multi_sweep_window_slides() {
        let b = base();
        let frames = multi_sweep_stream(&b, 6, 3, 12, 23).unwrap();
        assert_eq!(frames[0], b);
        for f in &frames {
            f.validate_unique().unwrap();
        }
        // Once the window saturates, old sweeps leave as new ones enter:
        // both insertions and removals happen frame to frame.
        let sa: std::collections::HashSet<_> = frames[4].coords().iter().copied().collect();
        let sb: std::collections::HashSet<_> = frames[5].coords().iter().copied().collect();
        assert!(sb.difference(&sa).count() > 0, "a fresh sweep inserts voxels");
        assert!(sa.difference(&sb).count() > 0, "the oldest sweep's voxels leave");
    }
}
