//! Geometry-static frame streams for steady-state inference benchmarks.
//!
//! A LiDAR pipeline that fuses sweeps into a fixed voxel grid (or replays a
//! recorded scene) feeds the network frames whose *coordinates* repeat
//! exactly while feature values drift — reflectance noise, per-sweep
//! intensity jitter. That is the workload a
//! [`CompiledSession`](torchsparse_core::CompiledSession) amortizes mapping
//! and tuning over, and this module synthesizes it deterministically.

use torchsparse_core::{CoreError, SparseTensor};

/// The same splitmix64 generator the engine uses for weight initialization.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Produces a stream of `frames` tensors sharing `base`'s coordinates and
/// stride exactly, with features perturbed by up to `±jitter` per value
/// (frame 0 is `base` unchanged). Deterministic in `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: the perturbed
/// features keep `base`'s shape).
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseTensor;
/// use torchsparse_coords::Coord;
/// use torchsparse_data::geometry_static_stream;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let base = SparseTensor::new(vec![Coord::new(0, 1, 2, 3)], Matrix::filled(1, 4, 0.5))?;
/// let frames = geometry_static_stream(&base, 5, 0.01, 42)?;
/// assert_eq!(frames.len(), 5);
/// assert_eq!(frames[0], base);
/// assert_eq!(frames[3].coords(), base.coords());
/// # Ok(())
/// # }
/// ```
pub fn geometry_static_stream(
    base: &SparseTensor,
    frames: usize,
    jitter: f32,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let mut state = seed ^ (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut feats = base.feats().clone();
        for v in feats.as_mut_slice() {
            // Uniform in [-jitter, jitter].
            let u = (splitmix64(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
            *v += (2.0 * u - 1.0) * jitter;
        }
        out.push(base.with_feats(feats)?);
    }
    Ok(out)
}

/// Deterministic Poisson arrival times: `frames` arrival offsets (in
/// microseconds from stream start) whose inter-arrival gaps are
/// exponentially distributed with mean `1e6 / rate_hz` — the classic
/// memoryless model of independent LiDAR streams hitting a shared service.
/// Deterministic in `seed`, so a serving benchmark replays the exact same
/// offered load every run.
///
/// # Example
///
/// ```
/// use torchsparse_data::poisson_arrivals;
///
/// let arrivals = poisson_arrivals(100, 20.0, 42);
/// assert_eq!(arrivals.len(), 100);
/// // Arrival times are nondecreasing, mean gap ~ 50ms at 20 Hz.
/// assert!(arrivals.windows(2).all(|w| w[1] >= w[0]));
/// ```
pub fn poisson_arrivals(frames: usize, rate_hz: f64, seed: u64) -> Vec<u64> {
    let rate = if rate_hz.is_finite() && rate_hz > 0.0 { rate_hz } else { 1.0 };
    let mean_gap_us = 1e6 / rate;
    let mut state = seed ^ 0xA02_87EC5_u64.rotate_left(13);
    let mut t = 0.0f64;
    (0..frames)
        .map(|_| {
            // Inverse-CDF sample of Exp(1/mean): -mean * ln(1 - u).
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            t += -mean_gap_us * (1.0 - u).max(f64::MIN_POSITIVE).ln();
            t as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_tensor::Matrix;

    fn base() -> SparseTensor {
        let coords: Vec<Coord> = (0..12).map(|i| Coord::new(0, i, i % 4, 0)).collect();
        SparseTensor::new(coords, Matrix::from_fn(12, 3, |r, c| (r + c) as f32 * 0.1)).unwrap()
    }

    #[test]
    fn frames_share_geometry_exactly() {
        let b = base();
        let frames = geometry_static_stream(&b, 6, 0.05, 7).unwrap();
        assert_eq!(frames.len(), 6);
        for f in &frames {
            assert_eq!(f.coords(), b.coords());
            assert_eq!(f.stride(), b.stride());
        }
    }

    #[test]
    fn frame_zero_is_base_and_later_frames_differ() {
        let b = base();
        let frames = geometry_static_stream(&b, 3, 0.05, 7).unwrap();
        assert_eq!(frames[0], b);
        assert_ne!(frames[1].feats(), b.feats());
        assert_ne!(frames[1].feats(), frames[2].feats());
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let b = base();
        let a = geometry_static_stream(&b, 4, 0.02, 9).unwrap();
        let c = geometry_static_stream(&b, 4, 0.02, 9).unwrap();
        assert_eq!(a, c);
        let d = geometry_static_stream(&b, 4, 0.02, 10).unwrap();
        assert_ne!(a[1].feats(), d[1].feats());
    }

    #[test]
    fn jitter_is_bounded() {
        let b = base();
        let frames = geometry_static_stream(&b, 2, 0.01, 3).unwrap();
        for (orig, new) in b.feats().as_slice().iter().zip(frames[1].feats().as_slice()) {
            assert!((orig - new).abs() <= 0.01 + f32::EPSILON);
        }
    }

    #[test]
    fn zero_frames_is_empty() {
        assert!(geometry_static_stream(&base(), 0, 0.1, 0).unwrap().is_empty());
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_ordered() {
        let a = poisson_arrivals(200, 20.0, 5);
        let b = poisson_arrivals(200, 20.0, 5);
        assert_eq!(a, b, "same seed must replay the same offered load");
        assert_ne!(a, poisson_arrivals(200, 20.0, 6));
        assert!(a.windows(2).all(|w| w[1] >= w[0]), "arrival times must be nondecreasing");
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let a = poisson_arrivals(2000, 20.0, 1);
        let mean_gap = *a.last().unwrap() as f64 / a.len() as f64;
        // Mean inter-arrival at 20 Hz is 50ms; allow generous sampling slack.
        assert!(
            (35_000.0..65_000.0).contains(&mean_gap),
            "mean gap {mean_gap}us should be near 50ms"
        );
    }

    #[test]
    fn poisson_degenerate_rates_fall_back() {
        // Non-finite or non-positive rates fall back to 1 Hz instead of
        // dividing by zero.
        let a = poisson_arrivals(10, 0.0, 3);
        assert_eq!(a.len(), 10);
        let b = poisson_arrivals(10, f64::NAN, 3);
        assert_eq!(a, b);
    }
}
