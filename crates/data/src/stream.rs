//! Geometry-static frame streams for steady-state inference benchmarks.
//!
//! A LiDAR pipeline that fuses sweeps into a fixed voxel grid (or replays a
//! recorded scene) feeds the network frames whose *coordinates* repeat
//! exactly while feature values drift — reflectance noise, per-sweep
//! intensity jitter. That is the workload a
//! [`CompiledSession`](torchsparse_core::CompiledSession) amortizes mapping
//! and tuning over, and this module synthesizes it deterministically.

use torchsparse_core::{CoreError, SparseTensor};

/// The same splitmix64 generator the engine uses for weight initialization.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Produces a stream of `frames` tensors sharing `base`'s coordinates and
/// stride exactly, with features perturbed by up to `±jitter` per value
/// (frame 0 is `base` unchanged). Deterministic in `seed`.
///
/// # Errors
///
/// Propagates tensor-construction errors (cannot occur: the perturbed
/// features keep `base`'s shape).
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseTensor;
/// use torchsparse_coords::Coord;
/// use torchsparse_data::geometry_static_stream;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let base = SparseTensor::new(vec![Coord::new(0, 1, 2, 3)], Matrix::filled(1, 4, 0.5))?;
/// let frames = geometry_static_stream(&base, 5, 0.01, 42)?;
/// assert_eq!(frames.len(), 5);
/// assert_eq!(frames[0], base);
/// assert_eq!(frames[3].coords(), base.coords());
/// # Ok(())
/// # }
/// ```
pub fn geometry_static_stream(
    base: &SparseTensor,
    frames: usize,
    jitter: f32,
    seed: u64,
) -> Result<Vec<SparseTensor>, CoreError> {
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        if f == 0 {
            out.push(base.clone());
            continue;
        }
        let mut state = seed ^ (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut feats = base.feats().clone();
        for v in feats.as_mut_slice() {
            // Uniform in [-jitter, jitter].
            let u = (splitmix64(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
            *v += (2.0 * u - 1.0) * jitter;
        }
        out.push(base.with_feats(feats)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_tensor::Matrix;

    fn base() -> SparseTensor {
        let coords: Vec<Coord> = (0..12).map(|i| Coord::new(0, i, i % 4, 0)).collect();
        SparseTensor::new(coords, Matrix::from_fn(12, 3, |r, c| (r + c) as f32 * 0.1)).unwrap()
    }

    #[test]
    fn frames_share_geometry_exactly() {
        let b = base();
        let frames = geometry_static_stream(&b, 6, 0.05, 7).unwrap();
        assert_eq!(frames.len(), 6);
        for f in &frames {
            assert_eq!(f.coords(), b.coords());
            assert_eq!(f.stride(), b.stride());
        }
    }

    #[test]
    fn frame_zero_is_base_and_later_frames_differ() {
        let b = base();
        let frames = geometry_static_stream(&b, 3, 0.05, 7).unwrap();
        assert_eq!(frames[0], b);
        assert_ne!(frames[1].feats(), b.feats());
        assert_ne!(frames[1].feats(), frames[2].feats());
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let b = base();
        let a = geometry_static_stream(&b, 4, 0.02, 9).unwrap();
        let c = geometry_static_stream(&b, 4, 0.02, 9).unwrap();
        assert_eq!(a, c);
        let d = geometry_static_stream(&b, 4, 0.02, 10).unwrap();
        assert_ne!(a[1].feats(), d[1].feats());
    }

    #[test]
    fn jitter_is_bounded() {
        let b = base();
        let frames = geometry_static_stream(&b, 2, 0.01, 3).unwrap();
        for (orig, new) in b.feats().as_slice().iter().zip(frames[1].feats().as_slice()) {
            assert!((orig - new).abs() <= 0.01 + f32::EPSILON);
        }
    }

    #[test]
    fn zero_frames_is_empty() {
        assert!(geometry_static_stream(&base(), 0, 0.1, 0).unwrap().is_empty());
    }
}
