use crate::blocks::{ConvBnReLU, ResidualBlock};
use torchsparse_core::{Context, CoreError, LayerOp, Module, SparseConv3d, SparseTensor, Tracer};

/// MinkUNet (Choy et al. 2019): the standard 4-stage sparse UNet for
/// semantic segmentation, at a configurable width multiplier.
///
/// Architecture (matching the MinkUNet used by TorchSparse's evaluation):
///
/// - stem: two 3x3x3 submanifold convolutions;
/// - 4 encoder stages: stride-2 downsample (kernel 2) + 2 residual blocks;
/// - 4 decoder stages: stride-2 transposed conv (kernel 2) + skip
///   concatenation + 2 residual blocks;
/// - classifier: 1x1x1 convolution to `num_classes`.
///
/// Reference channel widths at 1.0x: stem 32; encoder 32/64/128/256;
/// decoder 256/128/96/96.
///
/// # Example
///
/// ```
/// use torchsparse_core::Module;
/// use torchsparse_models::MinkUNet;
///
/// let net = MinkUNet::with_width(0.5, 4, 19, 42);
/// assert!(net.param_count() > 10_000);
/// ```
pub struct MinkUNet {
    name: String,
    stem1: ConvBnReLU,
    stem2: ConvBnReLU,
    /// (downsample, residual blocks) per encoder stage.
    encoders: Vec<(ConvBnReLU, Vec<ResidualBlock>)>,
    /// (upsample, residual blocks) per decoder stage.
    decoders: Vec<(ConvBnReLU, Vec<ResidualBlock>)>,
    classifier: SparseConv3d,
    width: f64,
}

fn scaled(base: usize, width: f64) -> usize {
    ((base as f64 * width).round() as usize).max(2)
}

impl MinkUNet {
    /// Builds a MinkUNet with the given width multiplier, input channel
    /// count, class count, and weight seed (two residual blocks per stage —
    /// the MinkUNet-18 layout used throughout the paper).
    pub fn with_width(width: f64, in_channels: usize, num_classes: usize, seed: u64) -> MinkUNet {
        Self::with_width_and_depth(width, 2, in_channels, num_classes, seed)
    }

    /// Builds a MinkUNet with an explicit number of residual blocks per
    /// stage: `1` gives a MinkUNet-14-class network, `2` the standard
    /// MinkUNet-18, `3` a MinkUNet-34-class variant.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_stage == 0`.
    pub fn with_width_and_depth(
        width: f64,
        blocks_per_stage: usize,
        in_channels: usize,
        num_classes: usize,
        seed: u64,
    ) -> MinkUNet {
        assert!(blocks_per_stage >= 1, "at least one block per stage");
        // Reference MinkUNet widths.
        let stem_c = scaled(32, width);
        let enc_c: Vec<usize> = [32, 64, 128, 256].iter().map(|&c| scaled(c, width)).collect();
        let dec_c: Vec<usize> = [256, 128, 96, 96].iter().map(|&c| scaled(c, width)).collect();

        let stem1 = ConvBnReLU::new("stem1", in_channels, stem_c, 3, 1, seed);
        let stem2 = ConvBnReLU::new("stem2", stem_c, stem_c, 3, 1, seed ^ 1);

        let mut encoders = Vec::new();
        let mut c_prev = stem_c;
        for (i, &c) in enc_c.iter().enumerate() {
            let s = seed.wrapping_add(10 + i as u64 * 3);
            let down = ConvBnReLU::new(format!("enc{i}.down"), c_prev, c, 2, 2, s);
            let blocks = (0..blocks_per_stage)
                .map(|b| {
                    ResidualBlock::new(format!("enc{i}.block{}", b + 1), c, c, s ^ (b as u64 + 2))
                })
                .collect();
            encoders.push((down, blocks));
            c_prev = c;
        }

        // Skip channels feeding each decoder stage, deepest first: the
        // encoder outputs at strides 8, 4, 2 and the stem output at stride 1.
        let skips = [enc_c[2], enc_c[1], enc_c[0], stem_c];
        let mut decoders = Vec::new();
        for (i, &c) in dec_c.iter().enumerate() {
            let s = seed.wrapping_add(100 + i as u64 * 7);
            let up = ConvBnReLU::new(format!("dec{i}.up"), c_prev, c, 2, 2, s).into_transposed();
            let cat_c = c + skips[i];
            let blocks = (0..blocks_per_stage)
                .map(|b| {
                    let cin = if b == 0 { cat_c } else { c };
                    ResidualBlock::new(format!("dec{i}.block{}", b + 1), cin, c, s ^ (b as u64 + 2))
                })
                .collect();
            decoders.push((up, blocks));
            c_prev = c;
        }

        let classifier = SparseConv3d::with_random_weights(
            "classifier",
            c_prev,
            num_classes,
            1,
            1,
            seed ^ 0xFFFF,
        );

        MinkUNet {
            name: format!("MinkUNet({width}x)"),
            stem1,
            stem2,
            encoders,
            decoders,
            classifier,
            width,
        }
    }

    /// The width multiplier this network was built with.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of encoder/decoder stages (4 each).
    pub fn stages(&self) -> usize {
        self.encoders.len()
    }
}

impl Module for MinkUNet {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let x = self.stem1.forward(input, ctx)?;
        let x = self.stem2.forward(&x, ctx)?;

        // Encoder, remembering skip tensors (finest first).
        let mut skips: Vec<SparseTensor> = vec![x.clone()];
        let mut cur = x;
        for (down, blocks) in &self.encoders {
            cur = down.forward(&cur, ctx)?;
            for b in blocks {
                cur = b.forward(&cur, ctx)?;
            }
            skips.push(cur.clone());
        }
        skips.pop(); // the bottleneck output is `cur`, not a skip

        // Decoder: upsample, concatenate the matching skip, refine.
        for (up, blocks) in &self.decoders {
            cur = up.forward(&cur, ctx)?;
            let skip = skips.pop().expect("one skip per decoder stage");
            cur = cur.cat_features(&skip)?;
            for b in blocks {
                cur = b.forward(&cur, ctx)?;
            }
        }

        self.classifier.forward(&cur, ctx)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        self.stem1.trace(tracer)?;
        self.stem2.trace(tracer)?;
        // Mirror `forward`'s skip bookkeeping on the tracer's value stack:
        // the stem output and every encoder stage except the bottleneck are
        // saved, then popped in reverse by the decoder concatenations.
        tracer.push(LayerOp::Push);
        let last = self.encoders.len().saturating_sub(1);
        for (i, (down, blocks)) in self.encoders.iter().enumerate() {
            down.trace(tracer)?;
            for b in blocks {
                b.trace(tracer)?;
            }
            if i != last {
                tracer.push(LayerOp::Push);
            }
        }
        for (up, blocks) in &self.decoders {
            up.trace(tracer)?;
            tracer.push(LayerOp::PopConcat);
            for b in blocks {
                b.trace(tracer)?;
            }
        }
        self.classifier.trace(tracer)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        let enc: usize = self
            .encoders
            .iter()
            .map(|(d, blocks)| {
                d.param_count() + blocks.iter().map(Module::param_count).sum::<usize>()
            })
            .sum();
        let dec: usize = self
            .decoders
            .iter()
            .map(|(u, blocks)| {
                u.param_count() + blocks.iter().map(Module::param_count).sum::<usize>()
            })
            .sum();
        self.stem1.param_count()
            + self.stem2.param_count()
            + enc
            + dec
            + self.classifier.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
    use torchsparse_tensor::Matrix;

    fn scene() -> SparseTensor {
        // A dense-ish blob so that four stride-2 downsamples keep points.
        let mut coords = std::collections::BTreeSet::new();
        for i in 0..500 {
            coords.insert(Coord::new(0, (i * 7) % 24, ((i * 13) / 3) % 20, (i * 3) % 16));
        }
        let coords: Vec<Coord> = coords.into_iter().collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r + c) % 9) as f32 * 0.25))
            .unwrap()
    }

    #[test]
    fn forward_produces_per_point_classes() {
        let net = MinkUNet::with_width(0.25, 4, 5, 7);
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let x = scene();
        let y = e.run(&net, &x).unwrap();
        assert_eq!(y.len(), x.len(), "segmentation output is per input point");
        assert_eq!(y.channels(), 5);
        assert_eq!(y.stride(), 1);
        assert_eq!(y.coords(), x.coords());
    }

    #[test]
    fn width_scales_parameters() {
        let half = MinkUNet::with_width(0.5, 4, 19, 0).param_count();
        let full = MinkUNet::with_width(1.0, 4, 19, 0).param_count();
        assert!(full > 3 * half, "1.0x ({full}) should be ~4x the params of 0.5x ({half})");
    }

    #[test]
    fn four_stages() {
        assert_eq!(MinkUNet::with_width(0.25, 4, 2, 0).stages(), 4);
    }

    #[test]
    fn depth_variants_scale_parameters_and_run() {
        let shallow = MinkUNet::with_width_and_depth(0.25, 1, 4, 5, 0);
        let deep = MinkUNet::with_width_and_depth(0.25, 3, 4, 5, 0);
        assert!(deep.param_count() > shallow.param_count());
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let x = scene();
        let a = e.run(&shallow, &x).unwrap();
        let b = e.run(&deep, &x).unwrap();
        assert_eq!(a.len(), x.len());
        assert_eq!(b.len(), x.len());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_depth_panics() {
        MinkUNet::with_width_and_depth(0.25, 0, 4, 2, 0);
    }

    #[test]
    fn deterministic_outputs() {
        let net = MinkUNet::with_width(0.25, 4, 3, 9);
        let mut e = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        let x = scene();
        let a = e.run(&net, &x).unwrap();
        let b = e.run(&net, &x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compiled_session_matches_dynamic_run() {
        let net = MinkUNet::with_width(0.25, 4, 5, 13);
        let x = scene();
        let mut dynamic = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let expected = dynamic.run(&net, &x).unwrap();
        let mut session = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti())
            .compile(&net, &x)
            .unwrap();
        let got = session.execute(&x).unwrap();
        assert_eq!(expected.coords(), got.coords());
        let a: Vec<u32> = expected.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = got.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "compiled MinkUNet must be bitwise identical to dynamic");
        assert!(
            session.last_latency() < dynamic.last_latency(),
            "plan reuse must beat per-frame mapping"
        );
    }

    #[test]
    fn optimized_and_baseline_agree_fp32() {
        let net = MinkUNet::with_width(0.25, 4, 3, 11);
        let x = scene();
        let mut base = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.precision = torchsparse_core::Precision::Fp32; // isolate numerics from quantization
        let mut opt = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        let ya = base.run(&net, &x).unwrap();
        let yb = opt.run(&net, &x).unwrap();
        let diff = ya.feats().max_abs_diff(yb.feats()).unwrap();
        assert!(diff < 1e-3, "engines disagree by {diff}");
    }
}
