//! SPVCNN (Tang et al., ECCV 2020): sparse point-voxel convolution.
//!
//! The TorchSparse paper's motivating workloads include SPVNAS/SPVCNN — the
//! authors' architecture that pairs a **voxel branch** (a sparse UNet over
//! voxelized features, exactly the workload TorchSparse accelerates) with a
//! high-resolution **point branch** (per-point MLPs), fusing them through
//! *voxelization* (scatter-mean of point features into voxels) and
//! *trilinear devoxelization* (interpolating voxel features back onto the
//! points). This module implements that point-voxel mechanic on top of the
//! engine:
//!
//! - [`PointScene`]: continuous point positions + features;
//! - [`voxelize_features`]: scatter-mean onto an existing voxel coordinate
//!   system;
//! - [`devoxelize_trilinear`]: interpolation from the 8 surrounding voxels;
//! - [`Spvcnn`]: stem MLP → voxel UNet ‖ point MLP → fused classifier.

use crate::minkunet::MinkUNet;
use std::collections::HashMap;
use torchsparse_coords::Coord;
use torchsparse_core::{Context, CoreError, Module, SparseTensor};
use torchsparse_gpusim::Precision as GemmPrecision;
use torchsparse_gpusim::{AccessMode, GemmShape, Stage};
use torchsparse_tensor::{gemm, Matrix};

/// A point cloud with continuous positions and per-point features — the
/// high-resolution side of the point-voxel representation.
#[derive(Debug, Clone, PartialEq)]
pub struct PointScene {
    /// Point positions in meters.
    pub positions: Vec<[f32; 3]>,
    /// Per-point features (`len x channels`).
    pub feats: Matrix,
}

impl PointScene {
    /// Creates a scene, validating lengths.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] when positions and feature rows
    /// disagree.
    pub fn new(positions: Vec<[f32; 3]>, feats: Matrix) -> Result<PointScene, CoreError> {
        if positions.len() != feats.rows() {
            return Err(CoreError::LengthMismatch { coords: positions.len(), feats: feats.rows() });
        }
        Ok(PointScene { positions, feats })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The voxel coordinate each point falls into at `voxel_size`.
    pub fn voxel_coords(&self, voxel_size: f32) -> Vec<Coord> {
        self.positions
            .iter()
            .map(|p| {
                Coord::new(
                    0,
                    (p[0] / voxel_size).floor() as i32,
                    (p[1] / voxel_size).floor() as i32,
                    (p[2] / voxel_size).floor() as i32,
                )
            })
            .collect()
    }
}

/// Scatter-means point features into a voxel tensor at `voxel_size`.
///
/// Returns the voxel tensor and, for each point, the index of its voxel —
/// the "point-to-voxel" map reused by devoxelization and fusion.
///
/// # Errors
///
/// Returns [`CoreError::EmptyInput`] for an empty scene.
pub fn voxelize_features(
    scene: &PointScene,
    voxel_size: f32,
    ctx: &mut Context,
) -> Result<(SparseTensor, Vec<u32>), CoreError> {
    if scene.is_empty() {
        return Err(CoreError::EmptyInput);
    }
    let per_point = scene.voxel_coords(voxel_size);
    let mut order: Vec<Coord> = per_point.clone();
    order.sort_unstable();
    order.dedup();
    let index: HashMap<Coord, u32> =
        order.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();

    let c = scene.feats.cols();
    let mut sums = Matrix::zeros(order.len(), c);
    let mut counts = vec![0u32; order.len()];
    let mut point_to_voxel = Vec::with_capacity(scene.len());
    for (i, coord) in per_point.iter().enumerate() {
        let v = index[coord];
        point_to_voxel.push(v);
        counts[v as usize] += 1;
        let dst = sums.row_mut(v as usize);
        for (d, &s) in dst.iter_mut().zip(scene.feats.row(i)) {
            *d += s;
        }
    }
    for (i, &n) in counts.iter().enumerate() {
        let inv = 1.0 / n as f32;
        for v in sums.row_mut(i) {
            *v *= inv;
        }
    }

    // Cost: stream the point features in, scatter-accumulate into voxels.
    charge_pv_transfer(scene.len(), order.len(), c, ctx);
    Ok((SparseTensor::new(order, sums)?, point_to_voxel))
}

/// Trilinearly interpolates voxel features back onto points.
///
/// Each point reads the (up to) 8 voxels whose centers surround it; missing
/// voxels contribute zero with their weight dropped and the remaining
/// weights renormalized — the convention of the SPVCNN reference code.
///
/// # Errors
///
/// Returns [`CoreError::EmptyInput`] for an empty scene.
pub fn devoxelize_trilinear(
    scene: &PointScene,
    voxels: &SparseTensor,
    voxel_size: f32,
    ctx: &mut Context,
) -> Result<Matrix, CoreError> {
    if scene.is_empty() {
        return Err(CoreError::EmptyInput);
    }
    let index: HashMap<Coord, usize> =
        voxels.coords().iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let c = voxels.channels();
    let mut out = Matrix::zeros(scene.len(), c);

    for (i, p) in scene.positions.iter().enumerate() {
        // Position in voxel units, relative to voxel centers.
        let u = [p[0] / voxel_size - 0.5, p[1] / voxel_size - 0.5, p[2] / voxel_size - 0.5];
        let base = [u[0].floor(), u[1].floor(), u[2].floor()];
        let frac = [u[0] - base[0], u[1] - base[1], u[2] - base[2]];
        let mut total_w = 0.0f32;
        let mut acc = vec![0.0f32; c];
        for dx in 0..2 {
            for dy in 0..2 {
                for dz in 0..2 {
                    let w = (if dx == 0 { 1.0 - frac[0] } else { frac[0] })
                        * (if dy == 0 { 1.0 - frac[1] } else { frac[1] })
                        * (if dz == 0 { 1.0 - frac[2] } else { frac[2] });
                    if w <= 0.0 {
                        continue;
                    }
                    let coord = Coord::new(
                        0,
                        base[0] as i32 + dx,
                        base[1] as i32 + dy,
                        base[2] as i32 + dz,
                    );
                    if let Some(&v) = index.get(&coord) {
                        total_w += w;
                        for (a, &f) in acc.iter_mut().zip(voxels.feats().row(v)) {
                            *a += w * f;
                        }
                    }
                }
            }
        }
        if total_w > 0.0 {
            let inv = 1.0 / total_w;
            for (dst, a) in out.row_mut(i).iter_mut().zip(&acc) {
                *dst = a * inv;
            }
        }
    }

    // Cost: each point gathers up to 8 voxel rows (random) + writes one row.
    charge_pv_transfer(8 * scene.len(), scene.len(), c, ctx);
    Ok(out)
}

/// Charges the memory traffic of a point<->voxel transfer: `reads` random
/// row reads and `writes` row writes of `channels`-wide features.
fn charge_pv_transfer(reads: usize, writes: usize, channels: usize, ctx: &mut Context) {
    ctx.charge_host_op();
    let mode = AccessMode::scalar_f32();
    let row = (channels * 4) as u64;
    let src = ctx.mem.alloc(reads as u64 * row);
    let dst = ctx.mem.alloc(writes as u64 * row);
    for i in 0..reads {
        ctx.mem.read(src, i as u64 * row, row, mode);
    }
    for i in 0..writes {
        ctx.mem.write(dst, i as u64 * row, row, mode);
    }
    let report = ctx.mem.take_report();
    let latency =
        report.latency(&ctx.device) + torchsparse_gpusim::Micros(ctx.device.launch_overhead_us);
    ctx.timeline.add(Stage::Other, latency);
}

/// A per-point MLP layer (linear + ReLU), the point branch's building block.
#[derive(Debug)]
pub struct PointMlp {
    name: String,
    weight: Matrix,
}

impl PointMlp {
    /// Creates an MLP layer with deterministic pseudo-random weights.
    pub fn new(name: impl Into<String>, c_in: usize, c_out: usize, seed: u64) -> PointMlp {
        let scale = (2.0 / c_in as f32).sqrt();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let weight = Matrix::from_fn(c_in, c_out, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0) * scale
        });
        PointMlp { name: name.into(), weight }
    }

    /// Applies `relu(x . W)` with simulated GEMM cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tensor`] on a channel mismatch.
    pub fn forward(&self, x: &Matrix, ctx: &mut Context) -> Result<Matrix, CoreError> {
        ctx.charge_host_op();
        let mut y = gemm::mm(x, &self.weight)?;
        y.map_inplace(|v| v.max(0.0));
        let shape = GemmShape::mm(x.rows(), self.weight.rows(), self.weight.cols());
        ctx.timeline.add(Stage::MatMul, ctx.gemm.latency(shape, GemmPrecision::Fp16));
        let _ = &self.name;
        Ok(y)
    }
}

/// SPVCNN: a voxel-branch MinkUNet fused with a high-resolution point
/// branch through voxelization / trilinear devoxelization.
///
/// # Example
///
/// ```
/// use torchsparse_models::Spvcnn;
///
/// let net = Spvcnn::new(0.25, 4, 8, 0.1, 42);
/// assert_eq!(net.num_classes(), 8);
/// ```
pub struct Spvcnn {
    point_stem: PointMlp,
    point_branch: PointMlp,
    voxel_branch: MinkUNet,
    classifier: PointMlp,
    hidden: usize,
    num_classes: usize,
    voxel_size: f32,
}

impl Spvcnn {
    /// Builds an SPVCNN with the given voxel-branch width multiplier, input
    /// channels, class count, voxel size, and weight seed.
    pub fn new(
        width: f64,
        in_channels: usize,
        num_classes: usize,
        voxel_size: f32,
        seed: u64,
    ) -> Spvcnn {
        let hidden = ((32.0 * width).round() as usize).max(4);
        Spvcnn {
            point_stem: PointMlp::new("point_stem", in_channels, hidden, seed),
            point_branch: PointMlp::new("point_branch", hidden, hidden, seed ^ 1),
            // The voxel branch predicts `hidden` features, not classes.
            voxel_branch: MinkUNet::with_width(width, hidden, hidden, seed ^ 2),
            classifier: PointMlp::new("classifier", hidden, num_classes, seed ^ 3),
            hidden,
            num_classes,
            voxel_size,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hidden feature width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The sparse voxel branch (a MinkUNet over `hidden` channels). Exposed
    /// so streaming drivers can compile it into a
    /// [`CompiledSession`](torchsparse_core::CompiledSession); the point
    /// branch's voxelization is data-dependent and stays dynamic.
    pub fn voxel_branch(&self) -> &MinkUNet {
        &self.voxel_branch
    }

    /// Runs the network: per-point class scores (`len x num_classes`).
    ///
    /// # Errors
    ///
    /// Propagates layer errors; [`CoreError::EmptyInput`] on empty scenes.
    pub fn forward(&self, scene: &PointScene, ctx: &mut Context) -> Result<Matrix, CoreError> {
        if scene.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        // Shared stem on points.
        let stem = self.point_stem.forward(&scene.feats, ctx)?;
        let stem_scene = PointScene::new(scene.positions.clone(), stem.clone())?;

        // Voxel branch: voxelize -> sparse UNet -> devoxelize.
        let (voxels, _p2v) = voxelize_features(&stem_scene, self.voxel_size, ctx)?;
        let voxel_out = self.voxel_branch.forward(&voxels, ctx)?;
        let voxel_feats = devoxelize_trilinear(&stem_scene, &voxel_out, self.voxel_size, ctx)?;

        // Point branch: MLP at full resolution.
        let point_feats = self.point_branch.forward(&stem, ctx)?;

        // Fuse (add) and classify.
        let fused = &voxel_feats + &point_feats;
        self.classifier.forward(&fused, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_core::{EnginePreset, OptimizationConfig};
    use torchsparse_gpusim::DeviceProfile;

    fn ctx() -> Context {
        Context::new(EnginePreset::TorchSparse.config(), DeviceProfile::rtx_2080ti())
    }

    fn fp32_ctx() -> Context {
        let mut cfg: OptimizationConfig = EnginePreset::TorchSparse.config();
        cfg.precision = torchsparse_core::Precision::Fp32;
        Context::new(cfg, DeviceProfile::rtx_2080ti())
    }

    fn scene(n: usize) -> PointScene {
        let positions: Vec<[f32; 3]> = (0..n)
            .map(|i| {
                let f = i as f32;
                [(f * 0.37) % 3.0, (f * 0.73) % 2.5, (f * 0.11) % 1.5]
            })
            .collect();
        let feats = Matrix::from_fn(n, 4, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.2);
        PointScene::new(positions, feats).unwrap()
    }

    #[test]
    fn point_scene_validation() {
        assert!(PointScene::new(vec![[0.0; 3]], Matrix::zeros(2, 4)).is_err());
        assert!(PointScene::new(vec![[0.0; 3]; 2], Matrix::zeros(2, 4)).is_ok());
    }

    #[test]
    fn voxelize_means_points_in_same_cell() {
        let s = PointScene::new(
            vec![[0.01, 0.01, 0.01], [0.05, 0.05, 0.05], [0.55, 0.0, 0.0]],
            Matrix::from_vec(3, 1, vec![1.0, 3.0, 7.0]).unwrap(),
        )
        .unwrap();
        let mut c = ctx();
        let (voxels, p2v) = voxelize_features(&s, 0.1, &mut c).unwrap();
        assert_eq!(voxels.len(), 2);
        assert_eq!(p2v[0], p2v[1]);
        assert_ne!(p2v[0], p2v[2]);
        // Mean of 1.0 and 3.0.
        let merged = voxels.coords().iter().position(|co| co.x == 0).unwrap();
        assert_eq!(voxels.feats()[(merged, 0)], 2.0);
    }

    #[test]
    fn devoxelize_constant_field_is_constant() {
        // Trilinear interpolation of a constant voxel field returns the
        // constant exactly (weights renormalize over present voxels).
        let s = scene(40);
        let mut c = ctx();
        let (voxels, _) = voxelize_features(&s, 0.25, &mut c).unwrap();
        let constant = voxels.with_feats(Matrix::filled(voxels.len(), 4, 3.5)).unwrap();
        let out = devoxelize_trilinear(&s, &constant, 0.25, &mut c).unwrap();
        for i in 0..s.len() {
            for ch in 0..4 {
                assert!(
                    (out[(i, ch)] - 3.5).abs() < 1e-5,
                    "point {i} channel {ch}: {}",
                    out[(i, ch)]
                );
            }
        }
    }

    #[test]
    fn devoxelize_point_at_voxel_center_copies_feature() {
        // A point exactly at a voxel center has weight 1 on that voxel.
        let s = PointScene::new(vec![[0.05, 0.05, 0.05]], Matrix::filled(1, 2, 1.0)).unwrap();
        let mut c = ctx();
        let (voxels, _) = voxelize_features(&s, 0.1, &mut c).unwrap();
        let painted = voxels.with_feats(Matrix::from_vec(1, 2, vec![4.0, -2.0]).unwrap()).unwrap();
        let out = devoxelize_trilinear(&s, &painted, 0.1, &mut c).unwrap();
        assert_eq!(out.row(0), &[4.0, -2.0]);
    }

    #[test]
    fn spvcnn_forward_shapes_and_determinism() {
        let net = Spvcnn::new(0.25, 4, 7, 0.2, 5);
        let s = scene(120);
        let mut c1 = fp32_ctx();
        let out1 = net.forward(&s, &mut c1).unwrap();
        assert_eq!(out1.shape(), (120, 7));
        assert!(c1.timeline.total().as_f64() > 0.0);
        let mut c2 = fp32_ctx();
        let out2 = net.forward(&s, &mut c2).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn spvcnn_point_branch_contributes() {
        // Zeroing the point features must change the output (the point
        // branch is live, not dead code).
        let net = Spvcnn::new(0.25, 4, 5, 0.2, 6);
        let s = scene(80);
        let zeroed = PointScene::new(s.positions.clone(), Matrix::zeros(80, 4)).unwrap();
        let mut c1 = fp32_ctx();
        let mut c2 = fp32_ctx();
        let a = net.forward(&s, &mut c1).unwrap();
        let b = net.forward(&zeroed, &mut c2).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() > 1e-6);
    }

    #[test]
    fn spvcnn_rejects_empty() {
        let net = Spvcnn::new(0.25, 4, 5, 0.2, 7);
        let empty = PointScene::new(vec![], Matrix::zeros(0, 4)).unwrap();
        assert!(matches!(net.forward(&empty, &mut ctx()), Err(CoreError::EmptyInput)));
    }
}
