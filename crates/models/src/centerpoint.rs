use crate::blocks::{ConvBnReLU, ResidualBlock};
use torchsparse_core::{Context, CoreError, Module, SparseTensor};
use torchsparse_gpusim::{Micros, Stage};

/// CenterPoint's sparse 3D encoder (Yin et al. 2021): a SECOND-style
/// backbone of submanifold blocks and stride-2 downsamples, followed by a
/// dense detection head.
///
/// The paper notes (§5.2) that ~10% of CenterPoint's end-to-end runtime is
/// *not* point cloud computation (the BEV image convolutions and NMS of the
/// detection head). We reproduce the sparse encoder layer-for-layer and
/// model the dense head as a fixed 10% surcharge on the backbone latency,
/// charged to [`Stage::Other`] — exactly the accounting the paper applies
/// when it says "our speedup ratio on sparse convolution is 10% more for
/// CenterPoint".
pub struct CenterPoint {
    name: String,
    input_conv: ConvBnReLU,
    /// (optional downsample, block1, block2) per stage.
    stages: Vec<(Option<ConvBnReLU>, ResidualBlock, ResidualBlock)>,
    /// Dense-head surcharge as a fraction of backbone latency.
    head_fraction: f64,
}

impl CenterPoint {
    /// Builds the standard 4-stage encoder (widths 16/32/64/128) for
    /// `in_channels` input features.
    pub fn new(in_channels: usize, seed: u64) -> CenterPoint {
        Self::with_widths(in_channels, &[16, 32, 64, 128], seed)
    }

    /// Builds an encoder with explicit stage widths; stage 0 is
    /// submanifold-only, later stages begin with a kernel-3 stride-2
    /// downsample (the SECOND/CenterPoint convention).
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty.
    pub fn with_widths(in_channels: usize, widths: &[usize], seed: u64) -> CenterPoint {
        assert!(!widths.is_empty(), "at least one stage required");
        let input_conv = ConvBnReLU::new("input", in_channels, widths[0], 3, 1, seed);
        let mut stages = Vec::new();
        let mut c_prev = widths[0];
        for (i, &c) in widths.iter().enumerate() {
            let s = seed.wrapping_add(1000 + i as u64 * 13);
            let down = if i == 0 {
                None
            } else {
                Some(ConvBnReLU::new(format!("stage{i}.down"), c_prev, c, 3, 2, s))
            };
            let b1 = ResidualBlock::new(format!("stage{i}.block1"), c, c, s ^ 5);
            let b2 = ResidualBlock::new(format!("stage{i}.block2"), c, c, s ^ 6);
            stages.push((down, b1, b2));
            c_prev = c;
        }
        CenterPoint {
            name: "CenterPoint".to_owned(),
            input_conv,
            stages,
            head_fraction: 0.1 / 0.9, // head = 10% of the end-to-end total
        }
    }

    /// Number of backbone stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }
}

impl Module for CenterPoint {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let before = ctx.timeline.total();
        let mut cur = self.input_conv.forward(input, ctx)?;
        for (down, b1, b2) in &self.stages {
            if let Some(d) = down {
                cur = d.forward(&cur, ctx)?;
            }
            cur = b1.forward(&cur, ctx)?;
            cur = b2.forward(&cur, ctx)?;
        }
        // Dense head (BEV convolutions + NMS): fixed fraction of the sparse
        // backbone latency, independent of the engine (§5.2).
        let backbone = ctx.timeline.total() - before;
        ctx.timeline.add(Stage::Other, Micros(backbone.as_f64() * self.head_fraction));
        Ok(cur)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        let stages: usize = self
            .stages
            .iter()
            .map(|(d, b1, b2)| {
                d.as_ref().map_or(0, Module::param_count) + b1.param_count() + b2.param_count()
            })
            .sum();
        self.input_conv.param_count() + stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
    use torchsparse_tensor::Matrix;

    fn scene() -> SparseTensor {
        // A dense contiguous slab (~1.5k points) so stride-2 downsampling
        // genuinely reduces the point count instead of dilating.
        let mut coords = Vec::new();
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..8 {
                    if (x + 2 * y + 3 * z) % 5 != 0 {
                        coords.push(Coord::new(0, x, y, z));
                    }
                }
            }
        }
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 5, |r, c| ((r * c) % 7) as f32 * 0.2)).unwrap()
    }

    #[test]
    fn forward_downsamples_three_times() {
        let net = CenterPoint::new(5, 3);
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let x = scene();
        let y = e.run(&net, &x).unwrap();
        assert_eq!(y.stride(), 8, "three stride-2 downsamples");
        assert_eq!(y.channels(), 128);
        assert!(y.len() < x.len());
    }

    #[test]
    fn head_charges_other_stage() {
        let net = CenterPoint::new(5, 4);
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        e.run(&net, &scene()).unwrap();
        let t = e.last_timeline();
        let frac = t.fraction(Stage::Other);
        // BatchNorm/ReLU also land in Other, so the fraction exceeds 10%,
        // but the head surcharge must push it clearly above zero.
        assert!(frac > 0.08, "other fraction {frac}");
    }

    #[test]
    fn custom_widths() {
        let net = CenterPoint::with_widths(5, &[8, 16], 0);
        assert_eq!(net.stages(), 2);
        let mut e = Engine::new(EnginePreset::SpConv, DeviceProfile::gtx_1080ti());
        let y = e.run(&net, &scene()).unwrap();
        assert_eq!(y.stride(), 2);
        assert_eq!(y.channels(), 16);
    }

    #[test]
    fn param_count_positive() {
        assert!(CenterPoint::new(5, 0).param_count() > 10_000);
    }
}
