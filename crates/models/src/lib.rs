//! Sparse CNN model zoo: the seven benchmark configurations of the paper.
//!
//! The paper evaluates on two architectures across three datasets
//! (§5.1):
//!
//! - [`MinkUNet`] (Choy et al. 2019) at 0.5x / 1.0x width for semantic
//!   segmentation on SemanticKITTI and nuScenes-LiDARSeg;
//! - [`CenterPoint`]'s sparse 3D encoder (Yin et al. 2021, SECOND-style
//!   backbone) for detection on nuScenes and Waymo.
//!
//! Models are built from `torchsparse-core` layers exactly as a user would
//! compose them through the Python API (§4.1): plain constructors, no
//! `indice_key` / coordinate-manager annotations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod centerpoint;
mod minkunet;
mod spvcnn;

pub use blocks::{ConvBnReLU, ResidualBlock};
pub use centerpoint::CenterPoint;
pub use minkunet::MinkUNet;
pub use spvcnn::{devoxelize_trilinear, voxelize_features, PointMlp, PointScene, Spvcnn};

/// The seven (model, dataset) benchmark configurations of Figure 11, with
/// display names matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkModel {
    /// MinkUNet 0.5x width on SemanticKITTI.
    MinkUNetHalfSemanticKitti,
    /// MinkUNet 1.0x width on SemanticKITTI.
    MinkUNetFullSemanticKitti,
    /// MinkUNet (1 frame) on nuScenes-LiDARSeg.
    MinkUNetNuScenes1,
    /// MinkUNet (3 frames) on nuScenes-LiDARSeg.
    MinkUNetNuScenes3,
    /// CenterPoint (10 frames) on nuScenes detection.
    CenterPointNuScenes10,
    /// CenterPoint (1 frame) on Waymo.
    CenterPointWaymo1,
    /// CenterPoint (3 frames) on Waymo.
    CenterPointWaymo3,
}

impl BenchmarkModel {
    /// All seven configurations in the paper's plot order.
    pub const ALL: [BenchmarkModel; 7] = [
        BenchmarkModel::MinkUNetHalfSemanticKitti,
        BenchmarkModel::MinkUNetFullSemanticKitti,
        BenchmarkModel::MinkUNetNuScenes1,
        BenchmarkModel::MinkUNetNuScenes3,
        BenchmarkModel::CenterPointNuScenes10,
        BenchmarkModel::CenterPointWaymo1,
        BenchmarkModel::CenterPointWaymo3,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkModel::MinkUNetHalfSemanticKitti => "MinkUNet (0.5x) @ SemanticKITTI",
            BenchmarkModel::MinkUNetFullSemanticKitti => "MinkUNet (1.0x) @ SemanticKITTI",
            BenchmarkModel::MinkUNetNuScenes1 => "MinkUNet (1f) @ nuScenes-LiDARSeg",
            BenchmarkModel::MinkUNetNuScenes3 => "MinkUNet (3f) @ nuScenes-LiDARSeg",
            BenchmarkModel::CenterPointNuScenes10 => "CenterPoint (10f) @ nuScenes",
            BenchmarkModel::CenterPointWaymo1 => "CenterPoint (1f) @ Waymo",
            BenchmarkModel::CenterPointWaymo3 => "CenterPoint (3f) @ Waymo",
        }
    }

    /// Whether this is a segmentation (MinkUNet) configuration.
    pub fn is_segmentation(self) -> bool {
        matches!(
            self,
            BenchmarkModel::MinkUNetHalfSemanticKitti
                | BenchmarkModel::MinkUNetFullSemanticKitti
                | BenchmarkModel::MinkUNetNuScenes1
                | BenchmarkModel::MinkUNetNuScenes3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmark_models() {
        assert_eq!(BenchmarkModel::ALL.len(), 7);
        let seg = BenchmarkModel::ALL.iter().filter(|m| m.is_segmentation()).count();
        assert_eq!(seg, 4);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = BenchmarkModel::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
