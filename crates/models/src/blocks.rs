use torchsparse_core::{
    BatchNorm, Context, CoreError, LayerOp, Module, ReLU, SparseConv3d, SparseTensor, Tracer,
};

/// The ubiquitous conv → batch norm → ReLU unit.
pub struct ConvBnReLU {
    name: String,
    conv: SparseConv3d,
    bn: BatchNorm,
    relu: ReLU,
}

impl ConvBnReLU {
    /// Builds a unit with random conv weights and identity normalization.
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel_size: usize,
        stride: i32,
        seed: u64,
    ) -> ConvBnReLU {
        let name = name.into();
        ConvBnReLU {
            conv: SparseConv3d::with_random_weights(
                format!("{name}.conv"),
                c_in,
                c_out,
                kernel_size,
                stride,
                seed,
            ),
            bn: BatchNorm::identity(format!("{name}.bn"), c_out),
            relu: ReLU::new(format!("{name}.relu")),
            name,
        }
    }

    /// Marks the inner convolution as transposed.
    #[must_use]
    pub fn into_transposed(mut self) -> ConvBnReLU {
        self.conv = self.conv.into_transposed();
        self
    }

    /// The wrapped convolution.
    pub fn conv(&self) -> &SparseConv3d {
        &self.conv
    }
}

impl Module for ConvBnReLU {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let x = self.conv.forward(input, ctx)?;
        let x = self.bn.forward(&x, ctx)?;
        self.relu.forward(&x, ctx)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        self.conv.trace(tracer)?;
        self.bn.trace(tracer)?;
        self.relu.trace(tracer)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.conv.param_count() + self.bn.param_count()
    }
}

/// A sparse residual block: two 3x3x3 submanifold convolutions with a skip
/// connection (plus a 1x1x1 projection when the channel counts differ) —
/// the building block of MinkUNet's encoder and decoder stages.
pub struct ResidualBlock {
    name: String,
    conv1: SparseConv3d,
    bn1: BatchNorm,
    conv2: SparseConv3d,
    bn2: BatchNorm,
    projection: Option<SparseConv3d>,
    relu: ReLU,
}

impl ResidualBlock {
    /// Builds a residual block with random weights.
    pub fn new(name: impl Into<String>, c_in: usize, c_out: usize, seed: u64) -> ResidualBlock {
        let name = name.into();
        let projection = if c_in != c_out {
            Some(SparseConv3d::with_random_weights(
                format!("{name}.proj"),
                c_in,
                c_out,
                1,
                1,
                seed ^ 0xABCD,
            ))
        } else {
            None
        };
        ResidualBlock {
            conv1: SparseConv3d::with_random_weights(
                format!("{name}.conv1"),
                c_in,
                c_out,
                3,
                1,
                seed,
            ),
            bn1: BatchNorm::identity(format!("{name}.bn1"), c_out),
            conv2: SparseConv3d::with_random_weights(
                format!("{name}.conv2"),
                c_out,
                c_out,
                3,
                1,
                seed ^ 0x1234,
            ),
            bn2: BatchNorm::identity(format!("{name}.bn2"), c_out),
            relu: ReLU::new(format!("{name}.relu")),
            projection,
            name,
        }
    }
}

impl Module for ResidualBlock {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let x = self.conv1.forward(input, ctx)?;
        let x = self.bn1.forward(&x, ctx)?;
        let x = self.relu.forward(&x, ctx)?;
        let x = self.conv2.forward(&x, ctx)?;
        let x = self.bn2.forward(&x, ctx)?;

        let shortcut = match &self.projection {
            Some(p) => p.forward(input, ctx)?,
            None => input.clone(),
        };
        // Residual addition; coordinates are identical (submanifold path).
        let sum = x.feats() + shortcut.feats();
        let out = x.with_feats(sum)?;
        self.relu.forward(&out, ctx)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        // Mirror `forward` exactly: save the input, run the main path, then
        // add the (optionally projected) shortcut and apply the final ReLU.
        tracer.push(LayerOp::Push);
        self.conv1.trace(tracer)?;
        self.bn1.trace(tracer)?;
        self.relu.trace(tracer)?;
        self.conv2.trace(tracer)?;
        self.bn2.trace(tracer)?;
        tracer.push(LayerOp::ResidualAdd { projection: self.projection.as_ref() });
        self.relu.trace(tracer)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.conv1.param_count()
            + self.conv2.param_count()
            + self.bn1.param_count()
            + self.bn2.param_count()
            + self.projection.as_ref().map_or(0, Module::param_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_core::{DeviceProfile, EnginePreset};
    use torchsparse_tensor::Matrix;

    fn ctx() -> Context {
        Context::new(EnginePreset::TorchSparse.config(), DeviceProfile::rtx_2080ti())
    }

    fn input(c: usize) -> SparseTensor {
        let coords: Vec<Coord> = (0..30)
            .map(|i| Coord::new(0, i % 6, (i / 6) % 5, i % 4))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, c, |r, cc| ((r * 3 + cc) % 5) as f32 - 2.0))
            .unwrap()
    }

    #[test]
    fn conv_bn_relu_output_nonnegative() {
        let m = ConvBnReLU::new("u", 4, 8, 3, 1, 1);
        let y = m.forward(&input(4), &mut ctx()).unwrap();
        assert_eq!(y.channels(), 8);
        assert!(y.feats().as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn residual_block_same_channels_has_no_projection() {
        let b = ResidualBlock::new("r", 8, 8, 2);
        assert!(b.projection.is_none());
        let y = b.forward(&input(8), &mut ctx()).unwrap();
        assert_eq!(y.channels(), 8);
        assert_eq!(y.coords(), input(8).coords());
    }

    #[test]
    fn residual_block_projects_channel_change() {
        let b = ResidualBlock::new("r", 4, 16, 3);
        assert!(b.projection.is_some());
        let y = b.forward(&input(4), &mut ctx()).unwrap();
        assert_eq!(y.channels(), 16);
    }

    #[test]
    fn residual_identity_shortcut_matters() {
        // With zeroed conv weights the block must reduce to ReLU(shortcut).
        let mut b = ResidualBlock::new("r", 4, 4, 4);
        b.conv1 =
            SparseConv3d::new("z1", 4, 4, 3, 1, false, vec![Matrix::zeros(4, 4); 27]).unwrap();
        b.conv2 =
            SparseConv3d::new("z2", 4, 4, 3, 1, false, vec![Matrix::zeros(4, 4); 27]).unwrap();
        let x = input(4);
        let y = b.forward(&x, &mut ctx()).unwrap();
        let mut expected = x.feats().clone();
        expected.map_inplace(|v| v.max(0.0));
        assert_eq!(y.feats(), &expected);
    }

    #[test]
    fn param_counts_positive() {
        assert!(ConvBnReLU::new("u", 2, 4, 3, 1, 0).param_count() > 0);
        assert!(ResidualBlock::new("r", 2, 4, 0).param_count() > 0);
    }
}
