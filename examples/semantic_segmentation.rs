//! Semantic segmentation scenario: run MinkUNet over a sequence of
//! SemanticKITTI-like scans on every engine preset and report per-stage
//! latency — a miniature version of the paper's Figure 11 study.
//!
//! Run with: `cargo run --release --example semantic_segmentation`

use torchsparse::core::{Engine, EnginePreset};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::{DeviceProfile, Stage, Timeline};
use torchsparse::models::MinkUNet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticDataset::semantic_kitti(0.1, 4);
    let scans: Vec<_> = (0..2).map(|i| dataset.scene(i)).collect::<Result<_, _>>()?;
    let model = MinkUNet::with_width(1.0, 4, 19, 11);
    let device = DeviceProfile::rtx_2080ti();

    println!(
        "MinkUNet (1.0x) on {} scans of ~{} voxels, {}\n",
        scans.len(),
        scans[0].len(),
        device.name
    );
    println!(
        "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "engine", "total", "matmul", "gather", "scatter", "mapping", "other"
    );

    let mut torchsparse_total = 0.0;
    for preset in [
        EnginePreset::MinkowskiEngine,
        EnginePreset::SpConv,
        EnginePreset::SpConvFp16,
        EnginePreset::BaselineFp32,
        EnginePreset::TorchSparse,
    ] {
        let mut engine = Engine::new(preset, device.clone());
        let mut total = Timeline::new();
        let mut checksum = 0.0f32;
        for scan in &scans {
            let out = engine.run(&model, scan)?;
            checksum += out.feats().frobenius_norm();
            total.merge(engine.last_timeline());
        }
        let t = |s: Stage| total.stage(s).as_f64() / scans.len() as f64 / 1e3;
        let avg_ms = total.total().as_f64() / scans.len() as f64 / 1e3;
        if preset == EnginePreset::TorchSparse {
            torchsparse_total = avg_ms;
        }
        println!(
            "{:<18} {:>8.2}ms {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   (checksum {:.1})",
            preset.name(),
            avg_ms,
            t(Stage::MatMul),
            t(Stage::Gather),
            t(Stage::Scatter),
            t(Stage::Mapping),
            t(Stage::Other),
            checksum
        );
    }
    println!("\nTorchSparse average: {torchsparse_total:.2} ms/scan — every FP32 engine computes identical outputs (equal checksums).");
    Ok(())
}
