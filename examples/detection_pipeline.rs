//! Detection scenario: a CenterPoint sparse encoder over multi-frame
//! Waymo-like scans, showing the downsampling pyramid and the mapping
//! overhead that motivates the paper's §4.4 optimizations.
//!
//! Run with: `cargo run --release --example detection_pipeline`

use torchsparse::core::{Engine, EnginePreset, Module, SparseConv3d};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::CenterPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three aggregated Waymo-like sweeps (the paper's heaviest workload).
    let dataset = SyntheticDataset::waymo(0.15, 5, 3);
    let input = dataset.scene(0)?;
    println!("aggregated input: {} voxels from 3 fused sweeps", input.len());

    // Walk the downsampling pyramid manually to show the coordinate
    // coarsening that Algorithm 3 performs.
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    let mut cur = input.clone();
    println!("\ndownsampling pyramid (kernel 3, stride 2):");
    println!("  stride {:>2}: {:>7} voxels", cur.stride(), cur.len());
    for level in 0..3 {
        let conv = SparseConv3d::with_random_weights(
            format!("pyramid{level}"),
            cur.channels(),
            cur.channels(),
            3,
            2,
            level as u64,
        );
        cur = engine.run(&conv, &cur)?;
        println!("  stride {:>2}: {:>7} voxels", cur.stride(), cur.len());
    }

    // Full CenterPoint encoder with the dense-head surcharge.
    let model = CenterPoint::new(5, 99);
    println!("\nCenterPoint encoder ({} parameters):", model.param_count());
    for preset in [EnginePreset::SpConvFp16, EnginePreset::TorchSparse] {
        let mut engine = Engine::new(preset, DeviceProfile::rtx_3090());
        let out = engine.run(&model, &input)?;
        let tl = engine.last_timeline();
        println!(
            "  {:<14} {:>9} total | mapping {:>8} ({:.1}%) | output {} voxels @ stride {}",
            preset.name(),
            tl.total().to_string(),
            tl.stage(Stage::Mapping).to_string(),
            100.0 * tl.fraction(Stage::Mapping),
            out.len(),
            out.stride()
        );
    }
    println!("\nThe mapping share is what Figure 13's 4.6x optimization attacks.");
    Ok(())
}
