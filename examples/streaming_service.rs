//! Fault-isolated multi-stream serving: four LiDAR streams share one
//! compiled MinkUNet; one of them is hit with injected worker panics and
//! gets quarantined + rebuilt per frame, while its neighbors keep serving
//! outputs bitwise identical to a solo run.
//!
//! Run with: `cargo run --release --example streaming_service`

use std::sync::Arc;
use torchsparse::core::{Engine, EnginePreset, FaultSite, SparseTensor, ValidationConfig};
use torchsparse::data::{geometry_static_stream, SyntheticDataset};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::MinkUNet;
use torchsparse::serve::{serve, ServeError, ServiceConfig};

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected panics are part of the demo; keep their backtraces quiet.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker-panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let base = SyntheticDataset::nuscenes(0.01, 4, 1).scene(42)?;
    let model = MinkUNet::with_width(0.25, 4, 16, 7);

    // Plan once, then split the session: the frozen CompiledModel is
    // shared (Sync) across every stream; each stream gets its own state.
    let engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    let (shared, _) = engine.compile(&model, &base)?.into_parts();

    let streams = 4;
    let frames_per_stream = 3;
    let frames: Vec<Vec<SparseTensor>> = (0..streams)
        .map(|s| geometry_static_stream(&base, frames_per_stream, 0.02, 100 + s as u64))
        .collect::<Result<_, _>>()?;

    // Ground truth for stream 3: a solo replay on a private stream state.
    let mut solo = shared.new_stream()?;
    let expected: Vec<Vec<u32>> = frames[3]
        .iter()
        .map(|f| Ok(bits(&shared.execute_on(&mut solo, f)?)))
        .collect::<Result<_, torchsparse::core::CoreError>>()?;

    // Every frame on stream 0 panics (injected); streams 1-3 are clean.
    let config = ServiceConfig {
        queue_capacity: frames_per_stream,
        admission: ValidationConfig::reject().with_max_points(10_000),
        faults: vec![(FaultSite::WorkerPanic, 1.0)],
        fault_streams: Some(vec![0]),
        fault_seed: 9,
        ..ServiceConfig::default()
    };

    let ((), outcome) = serve(&shared, streams, &config, |svc| {
        for (stream, stream_frames) in frames.iter().enumerate() {
            for (frame, f) in stream_frames.iter().enumerate() {
                match svc.submit(stream, frame as u64, Arc::new(f.clone())) {
                    Ok(()) => {}
                    Err(ServeError::Shed(_) | ServeError::QueueFull { .. }) => {
                        println!("stream {stream} frame {frame}: shed by load control");
                    }
                    Err(e) => println!("stream {stream} frame {frame}: {e}"),
                }
            }
        }
    })?;

    let h = &outcome.health;
    println!("admitted {} | completed {} | failed {}", h.admitted, h.completed, h.failed);
    println!(
        "quarantined {} | rebuilt {} (stream 0 panicked every frame, was \
         quarantined, and came back on a fresh state each time)",
        h.quarantined, h.rebuilt
    );
    for s in &h.streams {
        println!(
            "  stream {}: completed {}/{frames_per_stream}, quarantined {}{}",
            s.stream,
            s.completed,
            s.quarantined,
            if s.degradation.is_empty() { String::new() } else { format!(" [{}]", s.degradation) }
        );
    }

    // The fault storm on stream 0 never perturbed stream 3 by a single bit.
    for c in outcome.stream_completions(3) {
        let out = c.result.as_ref().expect("clean stream").as_ref().expect("kept output");
        assert_eq!(bits(out), expected[c.frame as usize], "bitwise isolation violated");
    }
    println!("stream 3 outputs are bitwise identical to its solo replay");
    Ok(())
}
