//! Adaptive grouping auto-tuning (Algorithm 5): profile a model on
//! calibration scenes, grid-search per-layer `(epsilon, S)`, and show the
//! matmul latency improvement over the untuned default.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use torchsparse::core::tuning::tune_engine;
use torchsparse::core::{Engine, EnginePreset};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::MinkUNet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticDataset::semantic_kitti(0.3, 4);
    let calibration: Vec<_> = (0..4).map(|i| dataset.scene(i)).collect::<Result<_, _>>()?;
    let test_scene = dataset.scene(100)?;
    let model = MinkUNet::with_width(0.5, 4, 19, 5);

    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    engine.context_mut().simulate_only = true;

    // Untuned run (the preset's default epsilon/S).
    engine.run(&model, &test_scene)?;
    let before = engine.last_timeline().stage(Stage::MatMul);

    // Algorithm 5: tune per-layer (epsilon, S) on the calibration scenes.
    let report = tune_engine(&mut engine, &model, &calibration, None)?;
    println!(
        "tuned {} layers over {} configurations each ({} calibration scenes)",
        report.selected.len(),
        report.configs_searched,
        report.samples
    );
    let mut layers: Vec<_> = report.selected.iter().collect();
    layers.sort_by(|a, b| a.0.cmp(b.0));
    for (layer, (eps, s)) in layers.iter().take(8) {
        let s_str = if *s == usize::MAX { "inf".to_owned() } else { format!("{s}") };
        println!("  {:<16} epsilon={:<4} S={}", layer, eps, s_str);
    }
    if layers.len() > 8 {
        println!("  ... and {} more layers", layers.len() - 8);
    }

    // Tuned run on an unseen scene.
    engine.run(&model, &test_scene)?;
    let after = engine.last_timeline().stage(Stage::MatMul);
    println!(
        "\nmatmul latency on an unseen scene: {} -> {} ({:.2}x)",
        before,
        after,
        before.as_f64() / after.as_f64()
    );
    println!("(The strategy itself stays input-adaptive: the same (epsilon, S)");
    println!("produces different group partitions for different scenes, §4.2.3.)");
    Ok(())
}
