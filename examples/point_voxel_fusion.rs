//! Point-voxel fusion (SPVCNN): run the authors' flagship architecture on
//! a synthetic LiDAR scan, demonstrating voxelization, the sparse UNet
//! voxel branch, and trilinear devoxelization back to points.
//!
//! Run with: `cargo run --release --example point_voxel_fusion`

use torchsparse::core::{Context, EnginePreset};
use torchsparse::data::LidarConfig;
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::{voxelize_features, PointScene, Spvcnn};
use torchsparse::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Raw points, not voxels: SPVCNN keeps full resolution on its point branch.
    let scan = LidarConfig::semantic_kitti().scaled(0.05).generate(3);
    let n = scan.len();
    let feats = Matrix::from_fn(n, 4, |r, c| match c {
        0 => scan.intensity[r],
        1..=3 => scan.points[r][c - 1] / 80.0,
        _ => 0.0,
    });
    let scene = PointScene::new(scan.points.clone(), feats)?;
    println!("input: {} raw points", scene.len());

    let mut ctx = Context::new(EnginePreset::TorchSparse.config(), DeviceProfile::rtx_3090());

    // Show the voxelization ratio the voxel branch works with.
    let stem = PointScene::new(scene.positions.clone(), scene.feats.clone())?;
    let (voxels, p2v) = voxelize_features(&stem, 0.1, &mut ctx)?;
    println!(
        "voxelized at 0.1 m: {} voxels ({:.1} points/voxel)",
        voxels.len(),
        p2v.len() as f64 / voxels.len() as f64
    );

    // Full SPVCNN inference.
    let net = Spvcnn::new(0.5, 4, 19, 0.1, 42);
    let mut ctx = Context::new(EnginePreset::TorchSparse.config(), DeviceProfile::rtx_3090());
    let scores = net.forward(&scene, &mut ctx)?;
    println!(
        "output: {} points x {} classes in {}",
        scores.rows(),
        scores.cols(),
        ctx.timeline.total()
    );
    for stage in Stage::ALL {
        let t = ctx.timeline.stage(stage);
        if t.as_f64() > 0.0 {
            println!(
                "  {:<8} {:>10}  ({:.1}%)",
                stage.name(),
                t.to_string(),
                100.0 * ctx.timeline.fraction(stage)
            );
        }
    }
    println!("\nThe voxel branch (a MinkUNet) dominates — exactly the workload");
    println!("TorchSparse accelerates; the point branch adds full-resolution detail.");
    Ok(())
}
