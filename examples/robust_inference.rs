//! Fault-tolerant execution demo: validation policies, fault injection,
//! and the observable degradation report.
//!
//! ```bash
//! cargo run --release --example robust_inference
//! ```

use torchsparse::coords::Coord;
use torchsparse::core::tuning::tune_engine;
use torchsparse::core::{
    CoreError, Engine, EnginePreset, FaultSite, ReLU, Sequential, SparseConv3d, SparseTensor,
    ValidationConfig,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::Matrix;

fn model() -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 1))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 2))
}

/// A corrupted scan: duplicate voxels and NaN/Inf features, as they arrive
/// from a faulty sensor or a bad decompression.
fn corrupted_scene() -> SparseTensor {
    let mut coords: Vec<Coord> =
        (0..48).map(|i| Coord::new(0, i % 6, (i / 6) % 5, i % 4)).collect();
    coords.push(coords[0]); // duplicate voxel
    let n = coords.len();
    let feats = Matrix::from_fn(n, 4, |r, c| match (r + c) % 11 {
        0 => f32::NAN,
        5 => f32::INFINITY,
        k => k as f32 * 0.25 - 1.0,
    });
    SparseTensor::new(coords, feats).expect("lengths agree")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = corrupted_scene();
    let net = model();

    // Trust (the default): malformed numerics flow straight through.
    let mut trusting = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    let out = trusting.run(&net, &input)?;
    println!("trust:    output finite = {}", out.feats().is_finite());

    // Reject: the first violation becomes a typed error, never a panic.
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.validation = ValidationConfig::reject();
    let mut rejecting = Engine::with_config(cfg, DeviceProfile::rtx_3090());
    match rejecting.run(&net, &input) {
        Err(CoreError::NonFiniteFeatures { count }) => {
            println!("reject:   refused input with {count} non-finite features");
        }
        other => println!("reject:   unexpected: {other:?}"),
    }

    // Sanitize: repair, run, and report what was repaired.
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.validation = ValidationConfig::sanitize();
    let mut sanitizing = Engine::with_config(cfg, DeviceProfile::rtx_3090());
    let out = sanitizing.run(&net, &input)?;
    println!(
        "sanitize: {} -> {} points, output finite = {}",
        input.len(),
        out.len(),
        out.feats().is_finite()
    );
    println!("          report: {}", sanitizing.degradation_report());

    // Fault injection: force a grid-table failure and an FP16 overflow in
    // one run; the engine completes through its documented fallbacks.
    let mut faulty = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    faulty.context_mut().faults.arm(FaultSite::GridTableBuild);
    faulty.context_mut().faults.arm(FaultSite::Fp16Overflow);
    let out = faulty.run(&net, &out)?;
    println!("faults:   output finite = {}", out.feats().is_finite());
    println!("          report: {}", faulty.degradation_report());

    // Even the tuner degrades instead of failing.
    let mut tuned = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    tuned.context_mut().faults.arm(FaultSite::GroupTuning);
    let report = tune_engine(&mut tuned, &net, std::slice::from_ref(&out), None)?;
    println!("tuning:   degraded = {}, inference still works = {}", report.degraded, {
        tuned.run(&net, &out).is_ok()
    });

    Ok(())
}
