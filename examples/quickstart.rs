//! Quickstart: generate a synthetic LiDAR scan, voxelize it, and run a
//! MinkUNet through the TorchSparse engine on a simulated RTX 3090.
//!
//! Run with: `cargo run --release --example quickstart`

use torchsparse::core::{Engine, EnginePreset};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::MinkUNet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A SemanticKITTI-like scan at 20% scale, voxelized at 5 cm.
    let dataset = SyntheticDataset::semantic_kitti(0.2, 4);
    let input = dataset.scene(42)?;
    println!("input: {} voxels, {} feature channels", input.len(), input.channels());

    // 2. A MinkUNet at 0.5x width predicting 19 classes.
    let model = MinkUNet::with_width(0.5, 4, 19, 7);

    // 3. The fully optimized engine on a simulated RTX 3090.
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    let output = engine.run(&model, &input)?;

    println!("output: {} points x {} classes", output.len(), output.channels());
    println!("simulated latency: {} ({:.1} FPS)", engine.last_latency(), engine.last_fps());
    for stage in Stage::ALL {
        let t = engine.last_timeline().stage(stage);
        if t.as_f64() > 0.0 {
            println!(
                "  {:<8} {:>10}  ({:.1}%)",
                stage.name(),
                t.to_string(),
                100.0 * engine.last_timeline().fraction(stage)
            );
        }
    }

    // 4. The same scene through the unoptimized FP32 baseline, for contrast.
    let mut baseline = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_3090());
    baseline.run(&model, &input)?;
    println!(
        "baseline FP32: {} -> TorchSparse is {:.2}x faster",
        baseline.last_latency(),
        baseline.last_latency().as_f64() / engine.last_latency().as_f64()
    );
    Ok(())
}
