//! # TorchSparse (Rust reproduction)
//!
//! An efficient point cloud inference engine — a from-scratch Rust
//! reproduction of *TorchSparse: Efficient Point Cloud Inference Engine*
//! (Tang, Liu, Li, Lin, Han — MLSys 2022).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! - [`tensor`]: dense linear algebra (matrices, blocked GEMM, software FP16,
//!   quantization, dense conv oracle).
//! - [`coords`]: coordinate management (hashing, grid tables, output
//!   coordinate calculation, kernel map search).
//! - [`gpusim`]: trace-driven GPU cost simulator (DRAM transactions, L2
//!   cache, GEMM utilization, device profiles).
//! - [`data`]: synthetic LiDAR datasets mimicking SemanticKITTI / nuScenes /
//!   Waymo statistics.
//! - [`core`]: the sparse convolution engine — sparse tensors, dataflows,
//!   adaptive grouping, mapping optimizations, engine presets.
//! - [`models`]: MinkUNet and CenterPoint sparse model zoo.
//! - [`serve`]: fault-isolated multi-stream serving runtime — admission
//!   control, per-request deadlines, stream quarantine, deterministic
//!   retry.
//!
//! # Quickstart
//!
//! ```
//! use torchsparse::core::{Engine, EnginePreset};
//! use torchsparse::data::{LidarConfig, voxelize_scan};
//! use torchsparse::gpusim::DeviceProfile;
//! use torchsparse::models::MinkUNet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small synthetic LiDAR scan and voxelize it.
//! let scan = LidarConfig::semantic_kitti().scaled(0.02).generate(42);
//! let input = voxelize_scan(&scan, 0.05, 4)?;
//!
//! // Build a tiny MinkUNet and run it through the optimized engine.
//! let model = MinkUNet::with_width(0.1, 4, 8, 7);
//! let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
//! let output = engine.run(&model, &input)?;
//! assert_eq!(output.len(), input.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude;

pub use torchsparse_coords as coords;
pub use torchsparse_core as core;
pub use torchsparse_data as data;
pub use torchsparse_gpusim as gpusim;
pub use torchsparse_models as models;
pub use torchsparse_serve as serve;
pub use torchsparse_tensor as tensor;
