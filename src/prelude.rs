//! Convenience re-exports: `use torchsparse::prelude::*;` brings in the
//! types needed for typical inference workflows.

pub use torchsparse_coords::Coord;
pub use torchsparse_core::{
    BatchNorm, Context, Engine, EnginePreset, GroupingStrategy, MapSearchStrategy, Module,
    OptimizationConfig, Precision, ReLU, Sequential, SparseConv3d, SparseMaxPool3d, SparseTensor,
};
pub use torchsparse_data::{collate, voxelize_scan, LidarConfig, SyntheticDataset};
pub use torchsparse_gpusim::{DeviceProfile, Micros, Stage, Timeline};
pub use torchsparse_models::{CenterPoint, MinkUNet, Spvcnn};
pub use torchsparse_tensor::Matrix;

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_core_types() {
        use super::*;
        let _engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
        let _coord = Coord::new(0, 1, 2, 3);
        let _m = Matrix::eye(2);
    }
}
